package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"microrec"
)

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args: want error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command: want error")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestCmdExpSingle(t *testing.T) {
	if err := run([]string{"exp", "table5", "-items", "500"}); err != nil {
		t.Errorf("exp table5: %v", err)
	}
	if err := run([]string{"exp", "nope"}); err == nil {
		t.Error("unknown experiment: want error")
	}
	if err := run([]string{"exp"}); err == nil {
		t.Error("missing experiment: want error")
	}
	if err := run([]string{"exp", "table3", "-csv"}); err != nil {
		t.Errorf("exp table3 -csv: %v", err)
	}
}

func TestCmdPlan(t *testing.T) {
	if err := run([]string{"plan", "-model", "small"}); err != nil {
		t.Errorf("plan small: %v", err)
	}
	if err := run([]string{"plan", "-model", "small", "-no-cartesian", "-v"}); err != nil {
		t.Errorf("plan -no-cartesian -v: %v", err)
	}
	if err := run([]string{"plan", "-model", "bogus"}); err == nil {
		t.Error("unknown model: want error")
	}
}

func TestCmdInfer(t *testing.T) {
	if err := run([]string{"infer", "-model", "small", "-n", "2"}); err != nil {
		t.Errorf("infer: %v", err)
	}
	if err := run([]string{"infer", "-model", "small", "-n", "2", "-fp32", "-zipf"}); err != nil {
		t.Errorf("infer fp32 zipf: %v", err)
	}
}

func TestCmdSpec(t *testing.T) {
	if err := run([]string{"spec", "-model", "small"}); err != nil {
		t.Errorf("spec: %v", err)
	}
	if err := run([]string{"spec", "-model", "large", "-json"}); err != nil {
		t.Errorf("spec -json: %v", err)
	}
	if err := run([]string{"spec", "-model", "nope"}); err == nil {
		t.Error("bad model: want error")
	}
}

func TestCmdTrace(t *testing.T) {
	out := t.TempDir() + "/trace.json"
	if err := run([]string{"trace", "-items", "4", "-o", out}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace output is not JSON: %v", err)
	}
	// 4 items x 12 stages (lookup + 3x(bcast,gemm,gather) + output + sigmoid).
	if len(events) != 4*12 {
		t.Errorf("trace has %d events, want 48", len(events))
	}
	if err := run([]string{"trace", "-model", "bogus"}); err == nil {
		t.Error("bad model: want error")
	}
}

// testMux builds the HTTP API around a small engine and a batched server.
func testMux(t testing.TB, opts microrec.ServerOptions) (*http.ServeMux, *microrec.Engine) {
	t.Helper()
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := microrec.NewServer(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return newServeMux(eng, srv, false), eng
}

// TestServeMuxPredict covers the happy path of the batched /predict.
func TestServeMuxPredict(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 4, Window: 200 * time.Microsecond})
	gen, err := microrec.NewGenerator(microrec.SmallProductionModel(), microrec.Uniform, 3)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(predictRequest{Indices: gen.Next()})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(string(body))))
	if rec.Code != 200 {
		t.Fatalf("/predict = %d: %s", rec.Code, rec.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.CTR < 0 || resp.CTR > 1 {
		t.Errorf("CTR = %v", resp.CTR)
	}
	if resp.ModeledLatencyUS <= 0 {
		t.Errorf("modeled latency = %v", resp.ModeledLatencyUS)
	}
	if resp.BatchSize < 1 {
		t.Errorf("batch size = %d", resp.BatchSize)
	}
}

// TestServeMuxErrors drives every /predict error path through the batched
// handler.
func TestServeMuxErrors(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 4, Window: 200 * time.Microsecond})
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"non-POST", "GET", "", http.StatusMethodNotAllowed},
		{"malformed JSON", "POST", "{bad json", http.StatusBadRequest},
		{"wrong table count", "POST", `{"indices":[[0]]}`, http.StatusBadRequest},
		{"empty body", "POST", "", http.StatusBadRequest},
		{"out-of-range index", "POST", badIndexBody(t), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest(tc.method, "/predict", strings.NewReader(tc.body)))
			if rec.Code != tc.want {
				t.Errorf("%s /predict (%s) = %d, want %d: %s", tc.method, tc.name, rec.Code, tc.want, rec.Body.String())
			}
		})
	}
}

// badIndexBody builds a shape-correct request whose first index is out of
// range.
func badIndexBody(t testing.TB) string {
	t.Helper()
	gen, err := microrec.NewGenerator(microrec.SmallProductionModel(), microrec.Uniform, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Next()
	q[0][0] = microrec.SmallProductionModel().Tables[0].Rows + 10
	body, err := json.Marshal(predictRequest{Indices: q})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServeMuxModelShape golden-checks the /model JSON shape.
func TestServeMuxModelShape(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 4})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/model", nil))
	if rec.Code != 200 {
		t.Fatalf("/model = %d", rec.Code)
	}
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "tables", "feature_len", "precision_bits", "lookup_ns"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/model missing %q: %v", key, raw)
		}
	}
	var info modelInfoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tables != 47 || info.FeatureLen != 352 || info.Name != "production-small" {
		t.Errorf("/model = %+v", info)
	}

	// Health check rides along.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz = %d", rec.Code)
	}
}

// TestServeMuxStatsAfterBurst fires a burst of concurrent /predict requests
// and checks /stats reports non-zero tail latency and batch occupancy.
func TestServeMuxStatsAfterBurst(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 8, Window: 300 * time.Microsecond, Workers: 2})
	gen, err := microrec.NewGenerator(microrec.SmallProductionModel(), microrec.Zipf, 5)
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([]string, 32)
	for i := range bodies {
		b, err := json.Marshal(predictRequest{Indices: gen.Next()})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = string(b)
	}
	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(body)))
			if rec.Code != 200 {
				t.Errorf("/predict = %d: %s", rec.Code, rec.Body.String())
			}
		}(body)
	}
	wg.Wait()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"max_batch", "window_us", "workers", "queries", "batches", "qps", "latency_us", "mean_batch", "batch_occupancy"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/stats missing %q: %v", key, raw)
		}
	}
	var st microrec.ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 32 {
		t.Errorf("queries = %d, want 32", st.Queries)
	}
	if st.LatencyUS.P99 <= 0 {
		t.Errorf("p99 latency = %v, want > 0", st.LatencyUS.P99)
	}
	if st.BatchOccupancy <= 0 || st.MeanBatch <= 0 {
		t.Errorf("occupancy = %v, mean batch = %v, want > 0", st.BatchOccupancy, st.MeanBatch)
	}
}

// TestServeMuxStatsHotCache enables the live hot-row cache (the -hotcache
// flag's engine option) and checks /stats surfaces its hit rate and
// effective lookup latency.
func TestServeMuxStatsHotCache(t *testing.T) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64, HotCacheBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := microrec.NewServer(eng, microrec.ServerOptions{MaxBatch: 8, Window: 200 * time.Microsecond, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mux := newServeMux(eng, srv, false)

	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 7)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(predictRequest{Indices: gen.Next()})
	if err != nil {
		t.Fatal(err)
	}
	// Repeat one query so the cache warms deterministically.
	for i := 0; i < 6; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(string(body))))
		if rec.Code != 200 {
			t.Fatalf("/predict = %d: %s", rec.Code, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var st microrec.ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.HotCache == nil {
		t.Fatalf("/stats missing hotcache section: %s", rec.Body.String())
	}
	if st.HotCache.Hits == 0 {
		t.Error("repeated query produced no cache hits")
	}
	if st.HotCache.HitRate <= 0 || st.HotCache.HitRate > 1 {
		t.Errorf("hit rate %v out of (0, 1]", st.HotCache.HitRate)
	}
	if st.HotCache.EffectiveLookupNS >= st.HotCache.ColdLookupNS {
		t.Errorf("warm cache: effective lookup %v should beat cold %v",
			st.HotCache.EffectiveLookupNS, st.HotCache.ColdLookupNS)
	}
}

// TestServeFlagValidationHotCache checks cmdServe rejects a negative cache
// capacity.
func TestServeFlagValidationHotCache(t *testing.T) {
	if err := run([]string{"serve", "-hotcache", "-1"}); err == nil {
		t.Error("negative -hotcache: want error")
	}
}

// TestServeFlagValidation drives cmdServe's flag rejection paths, including
// the pipelined-drain flags: depth below 2 without the worker-pool fallback,
// and nonsense numeric flags.
func TestServeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero batch", []string{"serve", "-batch", "0"}},
		{"zero window", []string{"serve", "-window", "0s"}},
		{"zero workers", []string{"serve", "-workers", "0"}},
		{"pipeline depth 1", []string{"serve", "-pipeline-depth", "1"}},
		{"pipeline depth 0", []string{"serve", "-pipeline-depth", "0"}},
		{"negative hotcache", []string{"serve", "-hotcache", "-1"}},
		{"unknown model", []string{"serve", "-model", "bogus"}},
		{"unparseable flag", []string{"serve", "-batch", "many"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Errorf("%v: want error", tc.args)
			}
		})
	}
}

// TestServeMuxPipelineOptions builds the serving stack exactly as cmdServe
// does for the accepted flag combinations — the default pipelined drain with
// an explicit -pipeline-depth, and -worker-pool with -pipeline-depth 1
// (ignored in that mode) — and checks /stats reflects the drain mode.
func TestServeMuxPipelineOptions(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{
		MaxBatch: 4, Window: 200 * time.Microsecond, PipelineDepth: 4,
	})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st microrec.ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "pipeline" || st.Pipeline == nil || st.Pipeline.Depth != 4 {
		t.Errorf("pipelined /stats = %+v", st)
	}

	mux, _ = testMux(t, microrec.ServerOptions{
		MaxBatch: 4, Window: 200 * time.Microsecond, Workers: 1,
		WorkerPool: true, PipelineDepth: 1,
	})
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	st = microrec.ServerStats{} // absent keys leave stale fields on reuse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "worker-pool" || st.Pipeline != nil {
		t.Errorf("worker-pool /stats = %+v", st)
	}
}

// TestServeMuxStatsPipelineSection checks the JSON wire shape of the /stats
// pipeline block after a burst of pipelined /predict traffic.
func TestServeMuxStatsPipelineSection(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 8, Window: 300 * time.Microsecond})
	gen, err := microrec.NewGenerator(microrec.SmallProductionModel(), microrec.Zipf, 13)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		body, err := json.Marshal(predictRequest{Indices: gen.Next()})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(body)))
			if rec.Code != 200 {
				t.Errorf("/predict = %d: %s", rec.Code, rec.Body.String())
			}
		}(string(body))
	}
	wg.Wait()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	pipe, ok := raw["pipeline"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing pipeline section: %v", raw)
	}
	for _, key := range []string{"depth", "in_flight", "completed", "stages", "measured_interval_us", "predicted_interval_us", "serial_interval_us"} {
		if _, ok := pipe[key]; !ok {
			t.Errorf("/stats pipeline missing %q: %v", key, pipe)
		}
	}
	stages, ok := pipe["stages"].([]any)
	if !ok || len(stages) != 3 {
		t.Fatalf("pipeline stages = %v", pipe["stages"])
	}
	first, ok := stages[0].(map[string]any)
	if !ok || first["name"] != "gather" {
		t.Errorf("first stage = %v, want gather", stages[0])
	}
}

// TestCmdBench runs the bench subcommand at a tiny scale and checks the
// emitted JSON document's shape and values.
func TestCmdBench(t *testing.T) {
	out := t.TempDir() + "/bench.json"
	if err := run([]string{"bench", "-n", "64", "-batches", "1,4", "-o", out}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench output is not JSON: %v", err)
	}
	if rep.Benchmark != "serve" || rep.Model != "production-small" || rep.Mode != "pipeline" {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	for i, want := range []int{1, 4} {
		r := rep.Results[i]
		if r.Batch != want || r.NSPerQuery <= 0 || r.QueriesPerSec <= 0 {
			t.Errorf("result %d = %+v", i, r)
		}
	}

	// Flag rejection paths.
	for _, bad := range [][]string{
		{"bench", "-n", "2"},
		{"bench", "-batches", "1,zero"},
		{"bench", "-batches", "0"},
		{"bench", "-model", "bogus"},
	} {
		if err := run(bad); err == nil {
			t.Errorf("%v: want error", bad)
		}
	}
}

// TestServeMuxOverloadResponses drives /predict into the shed path: a tiny
// bounded queue with -shed semantics must answer 429 with a Retry-After
// header once the burst outruns the drain.
func TestServeMuxOverloadResponses(t *testing.T) {
	// Workers sizes the internal dispatch channel (2x) even in pipelined
	// mode; pin it to 1 so the server's total internal buffering stays far
	// below the burst size and sheds are guaranteed.
	mux, _ := testMux(t, microrec.ServerOptions{
		MaxBatch: 1, Window: 200 * time.Microsecond, QueueDepth: 1,
		Workers: 1, PipelineDepth: 2, Shed: true,
	})
	gen, err := microrec.NewGenerator(microrec.SmallProductionModel(), microrec.Uniform, 9)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(predictRequest{Indices: gen.Next()})
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg            sync.WaitGroup
		mu            sync.Mutex
		okCount       int
		overloaded    int
		missingHeader int
	)
	// Concurrent bursts against a depth-1 queue at batch 1: the drain
	// serves one query at a time, so the queue must eventually be caught
	// full. Waves repeat under a time budget because a single-core
	// scheduler can interleave one wave's submits with the drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(string(body))))
				mu.Lock()
				defer mu.Unlock()
				switch rec.Code {
				case http.StatusOK:
					okCount++
				case http.StatusTooManyRequests:
					overloaded++
					if rec.Header().Get("Retry-After") == "" {
						missingHeader++
					}
				default:
					t.Errorf("/predict = %d: %s", rec.Code, rec.Body.String())
				}
			}()
		}
		wg.Wait()
		mu.Lock()
		done := overloaded > 0
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
	}
	if overloaded == 0 {
		t.Fatal("bursts into a depth-1 queue shed nothing")
	}
	if okCount == 0 {
		t.Error("no request served")
	}
	if missingHeader > 0 {
		t.Errorf("%d 429 responses missing the Retry-After header", missingHeader)
	}

	// /stats surfaces the admission section with the shed count.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	adm, ok := raw["admission"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing admission section: %v", raw)
	}
	for _, key := range []string{"queue_depth", "queue_capacity", "shedding", "shed", "deadline_drops", "cancel_drops", "late_completions", "knee_qps", "retry_after_ms"} {
		if _, ok := adm[key]; !ok {
			t.Errorf("/stats admission missing %q: %v", key, adm)
		}
	}
	if shed, _ := adm["shed"].(float64); shed == 0 {
		t.Errorf("admission shed = %v, want > 0", adm["shed"])
	}
	if shedding, _ := adm["shedding"].(bool); !shedding {
		t.Error("admission shedding = false on a shedding server")
	}
}

// TestCmdLoadtest runs the loadtest subcommand at a tiny scale with an
// explicit ladder and golden-checks the emitted JSON document.
func TestCmdLoadtest(t *testing.T) {
	out := t.TempDir() + "/loadtest.json"
	if err := run([]string{"loadtest", "-n", "60", "-loads", "300,600", "-sla", "100ms", "-batch", "8", "-o", out}); err != nil {
		t.Fatalf("loadtest: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadtestReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("loadtest output is not JSON: %v", err)
	}
	if rep.Benchmark != "loadtest" || rep.Model != "production-small" {
		t.Errorf("report header = %+v", rep)
	}
	if rep.SLAMS != 100 || rep.RequestsPerLoad != 60 {
		t.Errorf("report config: sla %v ms, n %d", rep.SLAMS, rep.RequestsPerLoad)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for i, want := range []float64{300, 600} {
		p := rep.Points[i]
		if p.TargetQPS != want || p.Offered != 60 {
			t.Errorf("point %d = %+v", i, p)
		}
		if p.Admitted+p.Shed+p.Expired+p.Failed != p.Offered {
			t.Errorf("point %d classification leak: %+v", i, p)
		}
	}
	if rep.PredictedCapacityQPS <= 0 {
		t.Errorf("predicted capacity = %v", rep.PredictedCapacityQPS)
	}

	// Flag rejection paths.
	for _, bad := range [][]string{
		{"loadtest", "-n", "10"},
		{"loadtest", "-sla", "0s"},
		{"loadtest", "-loads", "100,abc"},
		{"loadtest", "-loads", "200,100"},
		{"loadtest", "-tol", "1.5"},
		{"loadtest", "-queue", "-1"},
		{"loadtest", "-model", "bogus"},
	} {
		if err := run(bad); err == nil {
			t.Errorf("%v: want error", bad)
		}
	}
}

// TestServeFlagValidationAdmission drives cmdServe's new admission flags
// through their rejection paths.
func TestServeFlagValidationAdmission(t *testing.T) {
	for _, bad := range [][]string{
		{"serve", "-queue", "-1"},
		{"serve", "-sla", "-1s"},
	} {
		if err := run(bad); err == nil {
			t.Errorf("%v: want error", bad)
		}
	}
}
