package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"microrec"
)

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args: want error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command: want error")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestCmdExpSingle(t *testing.T) {
	if err := run([]string{"exp", "table5", "-items", "500"}); err != nil {
		t.Errorf("exp table5: %v", err)
	}
	if err := run([]string{"exp", "nope"}); err == nil {
		t.Error("unknown experiment: want error")
	}
	if err := run([]string{"exp"}); err == nil {
		t.Error("missing experiment: want error")
	}
	if err := run([]string{"exp", "table3", "-csv"}); err != nil {
		t.Errorf("exp table3 -csv: %v", err)
	}
}

func TestCmdPlan(t *testing.T) {
	if err := run([]string{"plan", "-model", "small"}); err != nil {
		t.Errorf("plan small: %v", err)
	}
	if err := run([]string{"plan", "-model", "small", "-no-cartesian", "-v"}); err != nil {
		t.Errorf("plan -no-cartesian -v: %v", err)
	}
	if err := run([]string{"plan", "-model", "bogus"}); err == nil {
		t.Error("unknown model: want error")
	}
}

func TestCmdInfer(t *testing.T) {
	if err := run([]string{"infer", "-model", "small", "-n", "2"}); err != nil {
		t.Errorf("infer: %v", err)
	}
	if err := run([]string{"infer", "-model", "small", "-n", "2", "-fp32", "-zipf"}); err != nil {
		t.Errorf("infer fp32 zipf: %v", err)
	}
}

func TestCmdSpec(t *testing.T) {
	if err := run([]string{"spec", "-model", "small"}); err != nil {
		t.Errorf("spec: %v", err)
	}
	if err := run([]string{"spec", "-model", "large", "-json"}); err != nil {
		t.Errorf("spec -json: %v", err)
	}
	if err := run([]string{"spec", "-model", "nope"}); err == nil {
		t.Error("bad model: want error")
	}
}

func TestCmdTrace(t *testing.T) {
	out := t.TempDir() + "/trace.json"
	if err := run([]string{"trace", "-items", "4", "-o", out}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace output is not JSON: %v", err)
	}
	// 4 items x 12 stages (lookup + 3x(bcast,gemm,gather) + output + sigmoid).
	if len(events) != 4*12 {
		t.Errorf("trace has %d events, want 48", len(events))
	}
	if err := run([]string{"trace", "-model", "bogus"}); err == nil {
		t.Error("bad model: want error")
	}
}

func TestServeMux(t *testing.T) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	mux := newServeMux(eng)

	// Health check.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz = %d", rec.Code)
	}

	// Model info.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/model", nil))
	var info modelInfoResponse
	if err := json.NewDecoder(rec.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Tables != 47 || info.FeatureLen != 352 {
		t.Errorf("/model = %+v", info)
	}

	// Prediction.
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Next()
	body, err := json.Marshal(predictRequest{Indices: q})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(string(body))))
	if rec.Code != 200 {
		t.Fatalf("/predict = %d: %s", rec.Code, rec.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.CTR < 0 || resp.CTR > 1 {
		t.Errorf("CTR = %v", resp.CTR)
	}
	if resp.ModeledLatencyUS <= 0 {
		t.Errorf("modeled latency = %v", resp.ModeledLatencyUS)
	}

	// Error paths.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/predict", nil))
	if rec.Code != 405 {
		t.Errorf("GET /predict = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader("{bad json")))
	if rec.Code != 400 {
		t.Errorf("bad json = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(`{"indices":[[0]]}`)))
	if rec.Code != 400 {
		t.Errorf("short query = %d, want 400", rec.Code)
	}
}
