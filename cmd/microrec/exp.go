package main

import (
	"fmt"
	"os"

	"microrec/internal/experiments"
	"microrec/internal/placement"
)

func cmdList() error {
	fmt.Println("available experiments:")
	for _, r := range experiments.All() {
		fmt.Printf("  %-10s %s\n", r.Name, r.Description)
	}
	return nil
}

func cmdExp(args []string) error {
	fs := newFlagSet("exp")
	items := fs.Int("items", 10000, "timing-simulation stream length")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	lpt := fs.Bool("lpt", false, "use the LPT allocator instead of the paper-faithful round-robin")
	seed := fs.Int64("seed", 1, "workload seed")
	if len(args) == 0 || len(args[0]) == 0 || args[0][0] == '-' {
		return fmt.Errorf("usage: microrec exp <name|all> [flags]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opts := experiments.Options{Items: *items, Seed: *seed}
	if *lpt {
		opts.Allocator = placement.LPT
	}
	var runners []experiments.Runner
	if name == "all" {
		runners = experiments.All()
	} else {
		r, err := experiments.Find(name)
		if err != nil {
			return err
		}
		runners = append(runners, r)
	}
	for _, r := range runners {
		tables, err := r.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprint(os.Stdout, t.CSV())
			} else {
				fmt.Fprintln(os.Stdout, t.String())
			}
		}
	}
	return nil
}
