// Command microrec is the CLI for the MicroRec reproduction: it regenerates
// the paper's tables and figures, inspects placement plans, runs ad-hoc
// inference, and serves predictions over HTTP.
//
// Usage:
//
//	microrec exp <name|all> [-items N] [-csv]     regenerate tables/figures
//	microrec plan -model small|large [...]        run the placement search
//	microrec infer -model small -n 16 [...]       run the engine on queries
//	microrec serve -addr :8080 -model small       HTTP inference server
//	microrec bench -o BENCH_serve.json            serving perf per batch size
//	microrec loadtest -sla 25ms                   open-loop sweep: knee + tail under overload
//	microrec benchdiff -candidate new.json        bench-regression gate vs the committed baseline
//	microrec smoke -addr http://localhost:8080    drive traffic, validate /metrics + /trace
//	microrec version                              build provenance (revision, toolchain, kernels)
//	microrec list                                 list available experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"microrec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "microrec:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no command given")
	}
	switch args[0] {
	case "exp":
		return cmdExp(args[1:])
	case "plan":
		return cmdPlan(args[1:])
	case "infer":
		return cmdInfer(args[1:])
	case "spec":
		return cmdSpec(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "bench":
		return cmdBench(args[1:])
	case "loadtest":
		return cmdLoadtest(args[1:])
	case "benchdiff":
		return cmdBenchdiff(args[1:])
	case "version":
		return cmdVersion(args[1:])
	case "smoke":
		return cmdSmoke(args[1:])
	case "kernels":
		// Which optimized datapath kernels this binary selected at init —
		// the provenance string bench/loadtest documents record. "portable"
		// means the pure-Go reference path (noasm build, or no CPU support).
		fmt.Println(microrec.KernelFeatures())
		return nil
	case "list":
		return cmdList()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `microrec - MicroRec (MLSys'21) reproduction

commands:
  exp <name|all>   regenerate a paper table/figure (see 'microrec list')
  plan             run the table-combination + allocation search
  infer            run the accelerator engine on synthetic queries
  serve            start an HTTP inference server (scale with -shards inside
                   one replica, -replicas/-route across replicas)
  bench            measure serving ns/query per batch size, emit JSON
  loadtest         open-loop load sweep: find the knee (max qps meeting the
                   SLA), drive past it, emit BENCH_loadtest.json
  benchdiff        compare a fresh bench JSON against the committed baseline,
                   fail on ns/query regressions beyond the tolerance (CI gate)
  kernels          print which optimized datapath kernels this build selected
  version          print build provenance (git revision, Go toolchain, kernels)
  trace            export a chrome://tracing trace — simulated pipeline timing
                   by default, or real request spans with -live (GET /trace)
  smoke            drive traffic at a running server and validate its
                   /metrics and /trace telemetry (CI observability check)
  spec             print a model specification
  list             list available experiments

`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}
