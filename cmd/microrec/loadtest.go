package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"microrec"
)

// loadtestReport is the JSON document `microrec loadtest` emits
// (BENCH_loadtest.json via `make loadtest-json`): the open-loop sweep's
// per-level results, the measured knee, and the pipesim-predicted capacity
// it is judged against — the overload-behaviour trajectory across PRs, next
// to BENCH_serve.json's throughput trajectory.
type loadtestReport struct {
	Benchmark     string  `json:"benchmark"`
	Model         string  `json:"model"`
	SLAMS         float64 `json:"sla_ms"`
	MaxBatch      int     `json:"max_batch"`
	WindowUS      float64 `json:"window_us"`
	QueueDepth    int     `json:"queue_depth"`
	PipelineDepth int     `json:"pipeline_depth"`
	// Shards is the scatter/gather tier's shard count (1 = single engine).
	Shards int `json:"shards"`
	// Replicas/Route describe the replicated tier when the run used
	// -replicas > 1 (absent on single-replica runs).
	Replicas        int     `json:"replicas,omitempty"`
	Route           string  `json:"route,omitempty"`
	RequestsPerLoad int     `json:"requests_per_load"`
	Tolerance       float64 `json:"tolerance"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	// Kernels records which optimized datapath kernels the producing build
	// selected (microrec.KernelFeatures; "portable" under the noasm tag).
	Kernels   string `json:"kernels,omitempty"`
	Timestamp string `json:"timestamp"`
	// BuildInfo names the commit and toolchain that produced the document
	// (absent in documents predating the provenance stamp).
	BuildInfo *microrec.BuildInfo `json:"build_info,omitempty"`
	// CalibratedQPS is the saturation goodput the auto ladder was built
	// around (0 when -loads was given explicitly).
	CalibratedQPS float64 `json:"calibrated_qps,omitempty"`
	// Points are the sweep levels in offered-rate order.
	Points []microrec.LoadPoint `json:"points"`
	// KneeQPS is the highest offered rate that met the SLA.
	KneeQPS float64 `json:"knee_qps"`
	// PredictedCapacityQPS is pipesim's capacity estimate over the measured
	// stage times (Server.CapacityQPS) after the sweep — the model the
	// measured knee is cross-checked against.
	PredictedCapacityQPS float64 `json:"predicted_capacity_qps"`
	// Admission echoes the server's final admission counters.
	Admission microrec.AdmissionStats `json:"admission"`
	// Tier records the tiered-store configuration (hot budget vs total
	// model bytes, modeled cold latency) and post-sweep counters when the
	// run used -cold-tier (absent on all-DRAM runs).
	Tier *microrec.TierStats `json:"tier,omitempty"`
	// Router echoes the replicated tier's post-sweep scoreboard when the
	// run used -replicas > 1: per-replica occupancy, routing decisions per
	// policy, and — on -route affinity runs, which calibrate under
	// round-robin before switching — the aggregate hot-cache hit-rate lift
	// over the round-robin baseline.
	Router *microrec.RouterStats `json:"router,omitempty"`
}

// loadtestTarget is the slice of the serving tier the sweep drives: a single
// *microrec.Server, or a *microrec.Router over N replicas.
type loadtestTarget interface {
	microrec.LoadTarget
	Stats() microrec.ServerStats
	CapacityQPS() float64
}

// parseLoadList parses a comma-separated ascending qps ladder ("500,1000").
func parseLoadList(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("loadtest: bad load %q in -loads", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdLoadtest(args []string) error {
	fs := newFlagSet("loadtest")
	modelName := fs.String("model", "small", "model: small or large")
	out := fs.String("o", "BENCH_loadtest.json", "output JSON path (- for stdout only)")
	n := fs.Int("n", 2000, "requests offered per load level")
	slaBudget := fs.Duration("sla", 100*time.Millisecond, "per-request deadline and knee criterion")
	loads := fs.String("loads", "auto", "comma-separated offered qps ladder, or 'auto' to calibrate and sweep 0.25x-2.5x of saturation")
	batch := fs.Int("batch", 32, "max micro-batch size")
	window := fs.Duration("window", 200*time.Microsecond, "micro-batch flush window")
	queue := fs.Int("queue", 64, "submit queue depth (0 = 4x batch); bounds every admitted request's queueing delay")
	pipelineDepth := fs.Int("pipeline-depth", 3, "plane-ring depth of the pipelined drain")
	topo := addTopologyFlags(fs)
	hotCache := fs.Int64("hotcache", 0, "live hot-row cache capacity in bytes per replica (0 = off); with -route affinity this is the cache whose aggregate hit-rate lift the report records")
	tol := fs.Float64("tol", 0.01, "loss fraction (shed+expired) still counted as meeting the SLA")
	zipf := fs.Bool("zipf", true, "Zipfian query skew (false = uniform)")
	seed := fs.Int64("seed", 21, "deterministic arrival + workload seed")
	applyColdTier := addColdTierFlags(fs, "loadtest")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 50 {
		return fmt.Errorf("loadtest: -n must be >= 50 (got %d): the knee is a tail measurement", *n)
	}
	if *slaBudget <= 0 {
		return fmt.Errorf("loadtest: -sla must be > 0 (got %v)", *slaBudget)
	}
	if *tol < 0 || *tol >= 1 {
		return fmt.Errorf("loadtest: -tol must be in [0, 1) (got %v)", *tol)
	}
	if *queue < 0 {
		return fmt.Errorf("loadtest: -queue must be >= 0 (got %d)", *queue)
	}
	if *hotCache < 0 {
		return fmt.Errorf("loadtest: -hotcache must be >= 0 bytes (got %d)", *hotCache)
	}
	if err := topo.validate("loadtest"); err != nil {
		return err
	}
	var ladder []float64
	if *loads != "auto" {
		var err error
		if ladder, err = parseLoadList(*loads); err != nil {
			return err
		}
	}

	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	engOpts := microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 4096, HotCacheBytes: *hotCache}
	if err := applyColdTier(&engOpts); err != nil {
		return err
	}
	// The loadtest server always sheds: open-loop overload against a
	// blocking queue just moves the queue into the harness.
	sopts := microrec.ServerOptions{
		Batching:  microrec.BatchingOptions{MaxBatch: *batch, Window: *window},
		Admission: microrec.AdmissionOptions{QueueDepth: *queue, Shed: true, SLA: *slaBudget},
		Pipeline:  microrec.PipelineOptions{Depth: *pipelineDepth},
		Tier:      microrec.TierOptions{Shards: *topo.shards},
	}
	var (
		target loadtestTarget
		rt     *microrec.Router
		eng    *microrec.Engine
	)
	if topo.routed() {
		// An affinity run calibrates under round-robin first, so the
		// hit-rate lift the report records is measured against the
		// oblivious baseline on this exact workload; the switch happens
		// right before the sweep.
		buildPolicy := topo.policy
		if topo.policy == microrec.RouteAffinity {
			buildPolicy = microrec.RouteRoundRobin
		}
		routedTopo := *topo
		routedTopo.policy = buildPolicy
		var first *microrec.Engine
		rt, first, err = routedTopo.buildRouter(spec, engOpts, sopts)
		if err != nil {
			return err
		}
		defer rt.Close()
		target, eng = rt, first
	} else {
		eng, err = microrec.NewEngine(spec, engOpts)
		if err != nil {
			return err
		}
		defer eng.Close()
		srv, err := microrec.NewServer(eng, sopts)
		if err != nil {
			return err
		}
		defer srv.Close()
		target = srv
	}

	dist := microrec.Uniform
	if *zipf {
		dist = microrec.Zipf
	}
	gen, err := microrec.NewGenerator(spec, dist, *seed)
	if err != nil {
		return err
	}
	qs := make([]microrec.Query, 512)
	for i := range qs {
		qs[i] = gen.Next()
	}

	// With -o - the JSON document owns stdout; progress and the per-level
	// table go to stderr so the output stays machine-parseable.
	progress := os.Stdout
	if *out == "-" {
		progress = os.Stderr
	}
	rep := loadtestReport{
		Benchmark:       "loadtest",
		Model:           spec.Name,
		SLAMS:           float64(*slaBudget) / float64(time.Millisecond),
		MaxBatch:        *batch,
		WindowUS:        float64(*window) / float64(time.Microsecond),
		QueueDepth:      target.Stats().Admission.QueueCapacity,
		PipelineDepth:   *pipelineDepth,
		Shards:          *topo.shards,
		RequestsPerLoad: *n,
		Tolerance:       *tol,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Kernels:         microrec.KernelFeatures(),
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
	}
	if topo.routed() {
		rep.Replicas = *topo.replicas
		rep.Route = string(topo.policy)
	}
	bi := microrec.ReadBuildInfo()
	rep.BuildInfo = &bi

	if ladder == nil {
		// Calibrate: offer far past any plausible capacity; a shedding
		// server's goodput under saturation approximates its capacity.
		arr, err := microrec.NewPoissonArrivals(1e6, *seed)
		if err != nil {
			return err
		}
		calib, err := microrec.RunLoad(target, qs, arr, microrec.LoadOptions{Requests: *n / 2, SLA: *slaBudget})
		if err != nil {
			return fmt.Errorf("loadtest: calibration: %w", err)
		}
		if calib.AdmittedQPS <= 0 {
			return fmt.Errorf("loadtest: calibration admitted nothing (SLA %v too tight for this host?)", *slaBudget)
		}
		rep.CalibratedQPS = calib.AdmittedQPS
		fmt.Fprintf(progress, "calibrated saturation goodput: %.0f qps (admitted %d / offered %d)\n",
			calib.AdmittedQPS, calib.Admitted, calib.Offered)
		for _, f := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5} {
			ladder = append(ladder, f*calib.AdmittedQPS)
		}
	}

	if rt != nil && topo.policy == microrec.RouteAffinity {
		// Calibration (and any explicit-ladder warmup) ran under
		// round-robin; mark the pooled hit-rate baseline, then switch. The
		// sweep's aggregate hit rate and the recorded delta now measure the
		// affinity lift over that baseline.
		rt.MarkHitRateBaseline()
		if err := rt.SetPolicy(microrec.RouteAffinity); err != nil {
			return err
		}
		fmt.Fprintf(progress, "hit-rate baseline marked under round-robin; sweeping with affinity routing\n")
	}

	sweep, err := microrec.SweepLoad(target, qs, microrec.LoadSweepOptions{
		Loads:     ladder,
		Requests:  *n,
		SLA:       *slaBudget,
		Tolerance: *tol,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	rep.Points = sweep.Points
	rep.KneeQPS = sweep.KneeQPS
	rep.PredictedCapacityQPS = target.CapacityQPS()
	st := target.Stats()
	rep.Admission = st.Admission
	rep.Tier = tierSnapshot(eng)
	rep.Router = st.Router

	fmt.Fprintf(progress, "\n%-12s %-12s %-10s %-10s %-10s %-8s %-8s %s\n",
		"offered-qps", "goodput-qps", "p50-us", "p99-us", "shed-p99", "shed", "expired", "SLA")
	for _, p := range sweep.Points {
		verdict := "MISS"
		if p.MeetsSLA(*slaBudget, *tol) {
			verdict = "meets"
		}
		fmt.Fprintf(progress, "%-12.0f %-12.0f %-10.0f %-10.0f %-10.0f %-8d %-8d %s\n",
			p.TargetQPS, p.AdmittedQPS, p.AdmittedLatencyUS.P50, p.AdmittedLatencyUS.P99,
			p.ShedLatencyUS.P99, p.Shed, p.Expired, verdict)
	}
	fmt.Fprintf(progress, "\nknee: %.0f qps meeting the %v SLA (pipesim-predicted capacity %.0f qps)\n",
		rep.KneeQPS, *slaBudget, rep.PredictedCapacityQPS)
	if rep.Router != nil {
		fmt.Fprintf(progress, "router: %d replicas, policy %s, aggregate hot-cache hit rate %.3f (baseline %.3f, lift %+.3f)\n",
			rep.Router.Replicas, rep.Router.Policy, rep.Router.AggregateHitRate,
			rep.Router.BaselineHitRate, rep.Router.HitRateDelta)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
