package main

import (
	"flag"
	"fmt"

	"microrec"
)

// addColdTierFlags registers the tiered embedding-store flags shared by
// serve, bench and loadtest. The returned apply validates the flags into the
// engine options; cmd prefixes its error messages. -hot-bytes and
// -cold-latency-ns are rejected without -cold-tier instead of being silently
// ignored — there is no hot/cold split to budget on an all-DRAM engine.
func addColdTierFlags(fs *flag.FlagSet, cmd string) func(*microrec.EngineOptions) error {
	coldTier := fs.String("cold-tier", "", "tiered embedding store: back all rows with an mmap'd cold file at this path ('tmp' = unnamed temp file, removed on close) and pin frequent rows in a DRAM hot tier; per-tier stats appear in /stats.tiers")
	coldLat := fs.Float64("cold-latency-ns", 0, "modeled per-access cold-tier latency in ns (0 = default 20000, NVMe read scale); requires -cold-tier")
	hotBytes := fs.Int64("hot-bytes", 0, "DRAM hot-tier byte budget (0 = a quarter of the model's embedding bytes, so the model is 4x the hot tier; negative = all-cold); requires -cold-tier")
	return func(o *microrec.EngineOptions) error {
		if *coldTier == "" {
			if *hotBytes != 0 {
				return fmt.Errorf("%s: -hot-bytes requires -cold-tier", cmd)
			}
			if *coldLat != 0 {
				return fmt.Errorf("%s: -cold-latency-ns requires -cold-tier", cmd)
			}
			return nil
		}
		if *coldLat < 0 {
			return fmt.Errorf("%s: -cold-latency-ns must be >= 0 (got %v)", cmd, *coldLat)
		}
		o.ColdTier = true
		if *coldTier != "tmp" {
			o.ColdTierPath = *coldTier
		}
		o.ColdLatencyNS = *coldLat
		o.HotTierBytes = *hotBytes
		return nil
	}
}

// tierSnapshot returns the engine's tier snapshot for the JSON reports, nil
// on an all-DRAM engine (omitempty keeps the baseline schema unchanged).
func tierSnapshot(eng *microrec.Engine) *microrec.TierStats {
	if snap, ok := eng.Tier(); ok {
		return &snap
	}
	return nil
}
