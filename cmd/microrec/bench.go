package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"microrec"
)

// benchResult is one batch size's measured serving performance.
type benchResult struct {
	Batch         int     `json:"batch"`
	NSPerQuery    float64 `json:"ns_per_query"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	MeanBatch     float64 `json:"mean_batch"`
	// MeasuredIntervalUS / PredictedIntervalUS report the pipelined drain's
	// steady-state batch interval (measured vs pipesim; 0 in worker-pool
	// mode or when too few batches completed).
	MeasuredIntervalUS  float64 `json:"measured_interval_us,omitempty"`
	PredictedIntervalUS float64 `json:"predicted_interval_us,omitempty"`
}

// benchReport is the JSON document `microrec bench` emits (BENCH_serve.json
// via `make bench-json`), tracking the serving perf trajectory across PRs.
type benchReport struct {
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Mode      string `json:"mode"`
	// Shards is the scatter/gather tier's shard count (1 = single engine).
	Shards int `json:"shards"`
	// Replicas/Route describe the replicated tier when the run used
	// -replicas > 1 (absent on single-replica runs, keeping the committed
	// baseline schema unchanged). benchdiff refuses cross-topology pairs:
	// N replicas' aggregate ns/query is not one datapath's.
	Replicas   int    `json:"replicas,omitempty"`
	Route      string `json:"route,omitempty"`
	Queries    int    `json:"queries_per_batch_size"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Kernels records which optimized datapath kernels the producing build
	// selected (microrec.KernelFeatures; "portable" under the noasm tag).
	// Empty in documents predating the kernel layer.
	Kernels   string `json:"kernels,omitempty"`
	Timestamp string `json:"timestamp"`
	// BuildInfo names the commit and toolchain that produced the document
	// (absent in documents predating the provenance stamp). benchdiff's
	// -require-same-commit gate compares these.
	BuildInfo *microrec.BuildInfo `json:"build_info,omitempty"`
	// Tier records the tiered-store configuration and end-of-run counters
	// when the run used -cold-tier (absent on all-DRAM runs, keeping the
	// committed baseline schema unchanged).
	Tier    *microrec.TierStats `json:"tier,omitempty"`
	Results []benchResult       `json:"results"`
}

// parseBatchList parses a comma-separated batch-size list ("1,16,64").
func parseBatchList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bench: bad batch size %q in -batches", p)
		}
		out = append(out, b)
	}
	return out, nil
}

// benchTarget is the slice of the serving tier the bench loop drives: a
// single *microrec.Server or a *microrec.Router over N replicas.
type benchTarget interface {
	Submit(ctx context.Context, q microrec.Query) (microrec.ServeResult, error)
	Stats() microrec.ServerStats
}

// benchServe drives n queries through a fresh serving target at one batch
// size and measures wall-clock ns/query from concurrent submitters (the same
// shape as BenchmarkServeBatched/Pipelined, minus the testing harness).
func benchServe(srv benchTarget, qs []microrec.Query, batch, n int) (benchResult, error) {
	benchCtx := context.Background()

	submitters := 4 * batch
	if submitters > 128 {
		submitters = 128
	}
	if submitters > n {
		submitters = n
	}
	run := func(total int) error {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		// Distribute the remainder so exactly `total` queries are timed
		// regardless of the submitter count.
		base, extra := total/submitters, total%submitters
		for g := 0; g < submitters; g++ {
			per := base
			if g < extra {
				per++
			}
			wg.Add(1)
			go func(g, per int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := srv.Submit(benchCtx, qs[(g*base+i)%len(qs)]); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(g, per)
		}
		wg.Wait()
		return firstErr
	}
	// Warm the planes, caches and timing memo before the measured run.
	if err := run(n / 4); err != nil {
		return benchResult{}, err
	}
	start := time.Now()
	if err := run(n); err != nil {
		return benchResult{}, err
	}
	elapsed := time.Since(start)

	st := srv.Stats()
	res := benchResult{
		Batch:         batch,
		NSPerQuery:    float64(elapsed.Nanoseconds()) / float64(n),
		QueriesPerSec: float64(n) / elapsed.Seconds(),
		MeanBatch:     st.MeanBatch,
	}
	if st.Pipeline != nil {
		res.MeasuredIntervalUS = st.Pipeline.MeasuredIntervalUS
		res.PredictedIntervalUS = st.Pipeline.PredictedIntervalUS
	}
	return res, nil
}

func cmdBench(args []string) error {
	fs := newFlagSet("bench")
	modelName := fs.String("model", "small", "model: small or large")
	out := fs.String("o", "BENCH_serve.json", "output JSON path (- for stdout only)")
	n := fs.Int("n", 4096, "queries per batch size")
	batches := fs.String("batches", "1,16,64", "comma-separated micro-batch sizes")
	workerPool := fs.Bool("worker-pool", false, "bench the worker-pool drain instead of the staged pipeline")
	pipelineDepth := fs.Int("pipeline-depth", 3, "plane-ring depth of the pipelined drain")
	topo := addTopologyFlags(fs)
	applyColdTier := addColdTierFlags(fs, "bench")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 4 {
		return fmt.Errorf("bench: -n must be >= 4 (got %d)", *n)
	}
	if err := topo.validate("bench"); err != nil {
		return err
	}
	sizes, err := parseBatchList(*batches)
	if err != nil {
		return err
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	engOpts := microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 4096}
	if err := applyColdTier(&engOpts); err != nil {
		return err
	}
	// One engine per replica (same seed: bit-identical), shared across the
	// batch-size ladder — the routers below borrow them without owning them.
	engines := make([]*microrec.Engine, *topo.replicas)
	for i := range engines {
		eng, err := microrec.NewEngine(spec, engOpts)
		if err != nil {
			return err
		}
		defer eng.Close()
		engines[i] = eng
	}
	eng := engines[0]
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 11)
	if err != nil {
		return err
	}
	qs := make([]microrec.Query, 512)
	for i := range qs {
		qs[i] = gen.Next()
	}

	rep := benchReport{
		Benchmark:  "serve",
		Model:      spec.Name,
		Mode:       "pipeline",
		Shards:     *topo.shards,
		Queries:    *n,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Kernels:    microrec.KernelFeatures(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if topo.routed() {
		rep.Replicas = *topo.replicas
		rep.Route = string(topo.policy)
	}
	bi := microrec.ReadBuildInfo()
	rep.BuildInfo = &bi
	opts := microrec.ServerOptions{
		Batching: microrec.BatchingOptions{Window: 200 * time.Microsecond},
		Pipeline: microrec.PipelineOptions{Depth: *pipelineDepth, WorkerPool: *workerPool},
		Tier:     microrec.TierOptions{Shards: *topo.shards},
	}
	if *workerPool {
		rep.Mode = "worker-pool"
	}
	// With -o - the JSON document owns stdout; progress goes to stderr so
	// the output stays machine-parseable (CI pipes it straight into jq).
	progress := os.Stdout
	if *out == "-" {
		progress = os.Stderr
	}
	for _, b := range sizes {
		res, err := func() (benchResult, error) {
			bopts := opts
			bopts.Batching.MaxBatch = b
			if topo.routed() {
				rt, err := microrec.NewRouter(microrec.RouterOptions{Policy: topo.policy})
				if err != nil {
					return benchResult{}, err
				}
				defer rt.Close()
				for _, e := range engines {
					// nil closer: the engines outlive this batch size's router.
					if _, err := rt.Add(e, bopts, nil); err != nil {
						return benchResult{}, err
					}
				}
				return benchServe(rt, qs, b, *n)
			}
			srv, err := microrec.NewServer(eng, bopts)
			if err != nil {
				return benchResult{}, err
			}
			defer srv.Close()
			return benchServe(srv, qs, b, *n)
		}()
		if err != nil {
			return fmt.Errorf("bench: batch %d: %w", b, err)
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(progress, "batch %3d: %10.0f ns/query  %9.0f queries/s  (mean batch %.1f)\n",
			b, res.NSPerQuery, res.QueriesPerSec, res.MeanBatch)
	}
	rep.Tier = tierSnapshot(eng)

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
