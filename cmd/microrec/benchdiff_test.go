package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microrec"
)

func writeBenchJSON(t *testing.T, dir, name string, rep benchReport) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func serveReport(ns map[int]float64) benchReport {
	rep := benchReport{Benchmark: "serve", Model: "production-small", Mode: "pipeline", Shards: 1}
	for _, b := range []int{1, 16, 64} {
		if v, ok := ns[b]; ok {
			rep.Results = append(rep.Results, benchResult{Batch: b, NSPerQuery: v})
		}
	}
	return rep
}

// TestBenchdiffGate drives the regression gate across its verdicts: within
// tolerance passes (including improvements), beyond tolerance fails naming
// the batch size, and disjoint batch sets are an error rather than a silent
// pass.
func TestBenchdiffGate(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchJSON(t, dir, "base.json", serveReport(map[int]float64{1: 1000, 16: 500, 64: 300}))

	// +20% at every size: inside the 25% tolerance.
	ok := writeBenchJSON(t, dir, "ok.json", serveReport(map[int]float64{1: 1200, 16: 600, 64: 360}))
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", ok}); err != nil {
		t.Fatalf("+20%% failed the 25%% gate: %v", err)
	}

	// A 2x improvement passes any tolerance.
	fast := writeBenchJSON(t, dir, "fast.json", serveReport(map[int]float64{1: 500, 16: 250, 64: 150}))
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", fast}); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}

	// +50% at one batch size only: the gate fails and names it.
	bad := writeBenchJSON(t, dir, "bad.json", serveReport(map[int]float64{1: 1000, 16: 750, 64: 300}))
	err := cmdBenchdiff([]string{"-baseline", base, "-candidate", bad})
	if err == nil {
		t.Fatal("+50%% at batch 16 passed the 25%% gate")
	}
	if !strings.Contains(err.Error(), "batch 16") {
		t.Fatalf("regression error does not name the batch size: %v", err)
	}

	// Tightening the tolerance flips the +20% run to a failure.
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", ok, "-tol", "0.1"}); err == nil {
		t.Fatal("+20%% passed a 10%% gate")
	}

	// No shared batch sizes: an error, not a vacuous pass.
	disjointRep := serveReport(nil)
	disjointRep.Results = []benchResult{{Batch: 8, NSPerQuery: 100}}
	disjoint := writeBenchJSON(t, dir, "disjoint.json", disjointRep)
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", disjoint}); err == nil {
		t.Fatal("disjoint batch sets passed")
	}
}

// TestBenchdiffEnvGate pins the comparability guard: a candidate measured in
// a different environment (model, mode, shards, or gomaxprocs) must be
// refused — an environment change is not a datapath result — unless
// -allow-env-mismatch explicitly accepts the skew. A kernels difference, by
// contrast, is the very thing the gate judges and must still compare.
func TestBenchdiffEnvGate(t *testing.T) {
	dir := t.TempDir()
	baseRep := serveReport(map[int]float64{1: 1000, 16: 500, 64: 300})
	baseRep.GoMaxProcs = 1
	base := writeBenchJSON(t, dir, "base.json", baseRep)

	mutations := []struct {
		name   string
		mutate func(*benchReport)
	}{
		{"model", func(r *benchReport) { r.Model = "production-large" }},
		{"mode", func(r *benchReport) { r.Mode = "worker-pool" }},
		{"shards", func(r *benchReport) { r.Shards = 4 }},
		{"gomaxprocs", func(r *benchReport) { r.GoMaxProcs = 8 }},
	}
	for _, m := range mutations {
		rep := serveReport(map[int]float64{1: 1000, 16: 500, 64: 300})
		rep.GoMaxProcs = 1
		m.mutate(&rep)
		cand := writeBenchJSON(t, dir, m.name+".json", rep)
		err := cmdBenchdiff([]string{"-baseline", base, "-candidate", cand})
		if err == nil {
			t.Fatalf("%s mismatch passed the gate", m.name)
		}
		if !strings.Contains(err.Error(), m.name) {
			t.Fatalf("%s mismatch error does not name the field: %v", m.name, err)
		}
		// The escape hatch compares anyway (and this pair has no regression).
		if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", cand, "-allow-env-mismatch"}); err != nil {
			t.Fatalf("-allow-env-mismatch still refused %s mismatch: %v", m.name, err)
		}
	}

	// Kernel-selection differences are the change under test, not env skew.
	rep := serveReport(map[int]float64{1: 1000, 16: 500, 64: 300})
	rep.GoMaxProcs = 1
	rep.Kernels = "avx2-gemm+batched-quantize"
	cand := writeBenchJSON(t, dir, "kernels.json", rep)
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", cand}); err != nil {
		t.Fatalf("kernels difference refused: %v", err)
	}
}

// TestBenchdiffSameCommitGate pins the -require-same-commit contract: off by
// default (the CI gate compares across commits on purpose), and when enabled
// it demands both documents carry build_info naming one known revision.
func TestBenchdiffSameCommitGate(t *testing.T) {
	dir := t.TempDir()
	stamped := func(rev string) benchReport {
		rep := serveReport(map[int]float64{1: 1000, 16: 500, 64: 300})
		if rev != "" {
			rep.BuildInfo = &microrec.BuildInfo{Revision: rev, GoVersion: "go1.22"}
		}
		return rep
	}
	baseA := writeBenchJSON(t, dir, "baseA.json", stamped("aaaa"))
	candA := writeBenchJSON(t, dir, "candA.json", stamped("aaaa"))
	candB := writeBenchJSON(t, dir, "candB.json", stamped("bbbb"))
	unstamped := writeBenchJSON(t, dir, "unstamped.json", stamped(""))
	unknown := writeBenchJSON(t, dir, "unknown.json", stamped("unknown"))

	// Default: cross-commit pairs compare fine (the CI gate's shape).
	if err := cmdBenchdiff([]string{"-baseline", baseA, "-candidate", candB}); err != nil {
		t.Fatalf("cross-commit pair refused without -require-same-commit: %v", err)
	}
	// Same revision passes the strict gate.
	if err := cmdBenchdiff([]string{"-baseline", baseA, "-candidate", candA, "-require-same-commit"}); err != nil {
		t.Fatalf("same-commit pair refused: %v", err)
	}
	// Different revisions, missing stamps and unknown revisions are refused.
	for name, cand := range map[string]string{"cross-commit": candB, "unstamped": unstamped, "unknown-revision": unknown} {
		if err := cmdBenchdiff([]string{"-baseline", baseA, "-candidate", cand, "-require-same-commit"}); err == nil {
			t.Errorf("%s candidate passed -require-same-commit", name)
		}
	}
}

// TestBenchdiffArgumentContract covers the error paths: missing candidate,
// unreadable or non-serve documents.
func TestBenchdiffArgumentContract(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchJSON(t, dir, "base.json", serveReport(map[int]float64{1: 1000}))
	if err := cmdBenchdiff([]string{"-baseline", base}); err == nil {
		t.Fatal("missing -candidate accepted")
	}
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", filepath.Join(dir, "absent.json")}); err == nil {
		t.Fatal("absent candidate accepted")
	}
	wrong := writeBenchJSON(t, dir, "wrong.json", benchReport{Benchmark: "loadtest", Results: []benchResult{{Batch: 1, NSPerQuery: 1}}})
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", wrong}); err == nil {
		t.Fatal("non-serve benchmark accepted")
	}
	empty := writeBenchJSON(t, dir, "empty.json", benchReport{Benchmark: "serve"})
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", empty}); err == nil {
		t.Fatal("empty results accepted")
	}
}

// TestBenchdiffRejectsZeroCandidate pins the broken-measurement guard: a
// candidate with ns_per_query <= 0 is an error, not a -100% "improvement".
func TestBenchdiffRejectsZeroCandidate(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchJSON(t, dir, "base.json", serveReport(map[int]float64{1: 1000}))
	zero := writeBenchJSON(t, dir, "zero.json", serveReport(map[int]float64{1: 0}))
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", zero}); err == nil {
		t.Fatal("zero candidate ns_per_query passed the gate")
	}
}

// TestBenchdiffMissingBaselineBatch pins the stale-baseline guard: a batch
// size present in the candidate but absent from the committed baseline means
// the baseline predates the current bench matrix, and the gate must demand a
// regenerated baseline rather than silently skipping the unguarded batch
// (which let regressions at new batch sizes ride in unchecked forever).
func TestBenchdiffMissingBaselineBatch(t *testing.T) {
	dir := t.TempDir()
	// Baseline covers batches {1, 16}; candidate adds batch 64.
	base := writeBenchJSON(t, dir, "base.json", serveReport(map[int]float64{1: 1000, 16: 500}))
	cand := writeBenchJSON(t, dir, "cand.json", serveReport(map[int]float64{1: 1000, 16: 500, 64: 300}))
	err := cmdBenchdiff([]string{"-baseline", base, "-candidate", cand})
	if err == nil {
		t.Fatal("candidate batch 64 missing from baseline passed the gate")
	}
	if !strings.Contains(err.Error(), "batch 64") {
		t.Fatalf("error does not name the missing batch: %v", err)
	}
}

// TestBenchdiffRejectsZeroBaseline pins the other broken-document edge: a
// baseline recording ns_per_query <= 0 would make the regression ratio
// Inf/NaN; the gate must fail with a message naming the batch, not emit a
// nonsense comparison.
func TestBenchdiffRejectsZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchJSON(t, dir, "base.json", serveReport(map[int]float64{1: 0, 16: 500}))
	cand := writeBenchJSON(t, dir, "cand.json", serveReport(map[int]float64{1: 900, 16: 500}))
	err := cmdBenchdiff([]string{"-baseline", base, "-candidate", cand})
	if err == nil {
		t.Fatal("zero baseline ns_per_query passed the gate")
	}
	if !strings.Contains(err.Error(), "batch 1") {
		t.Fatalf("error does not name the batch: %v", err)
	}
}
