package main

import (
	"flag"
	"fmt"

	"microrec"
)

// The serving tier scales along two orthogonal axes, and the flags below are
// registered together so every command describes them with one vocabulary:
//
//   - -shards splits ONE model's embedding tables across N gather shards
//     inside a single replica (scatter/gather, partial planes merged before
//     the FC stack) — more lookup bandwidth for one server;
//   - -replicas runs N complete server replicas — each a full
//     batching/pipeline composition around its own engine (and its own
//     -shards gather tier) — behind a router, and -route picks how requests
//     are spread over them.
//
// The two compose: -shards 2 -replicas 3 is three replicas of a two-shard
// server.
type topology struct {
	shards   *int
	replicas *int
	route    *string

	policy microrec.RoutePolicy
}

// addTopologyFlags registers -shards, -replicas and -route on fs with the
// shared help text. Call validate after fs.Parse.
func addTopologyFlags(fs *flag.FlagSet) *topology {
	t := &topology{}
	t.shards = fs.Int("shards", 1, "gather shards inside each replica: embedding tables split across N scatter/gather shards, partial planes merged before the FC stack (1 = single engine); per-shard occupancy appears in /stats.cluster")
	t.replicas = fs.Int("replicas", 1, "complete server replicas behind the router, each its own engine + batching/pipeline composition (1 = no router); per-replica occupancy appears in /stats.router")
	t.route = fs.String("route", string(microrec.RouteRoundRobin), "routing policy across -replicas: round-robin, least-loaded (live queue depth + pipeline occupancy), or affinity (hot-key rendezvous hashing, so N hot caches act like one N-times-larger one)")
	return t
}

// validate checks the parsed topology flags and resolves the route policy.
func (t *topology) validate(cmd string) error {
	if *t.shards < 1 {
		return fmt.Errorf("%s: -shards must be >= 1 (got %d)", cmd, *t.shards)
	}
	if *t.replicas < 1 {
		return fmt.Errorf("%s: -replicas must be >= 1 (got %d)", cmd, *t.replicas)
	}
	p, err := microrec.ParseRoutePolicy(*t.route)
	if err != nil {
		return fmt.Errorf("%s: -route: %w", cmd, err)
	}
	t.policy = p
	return nil
}

// routed reports whether the command should build the replicated tier.
func (t *topology) routed() bool { return *t.replicas > 1 }

// buildRouter assembles the replicated tier: one engine per replica (same
// spec, seed and options, so the replicas are bit-identical) added to a
// router under the parsed policy. The router owns the engines — Close tears
// everything down. The first replica's engine is also returned for
// read-only introspection (/model, tier snapshots); it stays owned by the
// router.
func (t *topology) buildRouter(spec *microrec.Spec, engOpts microrec.EngineOptions, sopts microrec.ServerOptions) (*microrec.Router, *microrec.Engine, error) {
	rt, err := microrec.NewRouter(microrec.RouterOptions{Policy: t.policy})
	if err != nil {
		return nil, nil, err
	}
	var first *microrec.Engine
	for i := 0; i < *t.replicas; i++ {
		eng, err := microrec.NewEngine(spec, engOpts)
		if err != nil {
			_ = rt.Close()
			return nil, nil, fmt.Errorf("replica %d engine: %w", i+1, err)
		}
		if _, err := rt.Add(eng, sopts, eng.Close); err != nil {
			_ = eng.Close()
			_ = rt.Close()
			return nil, nil, fmt.Errorf("replica %d: %w", i+1, err)
		}
		if first == nil {
			first = eng
		}
	}
	return rt, first, nil
}
