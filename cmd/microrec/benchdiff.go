package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// benchdiff is the CI bench-regression gate: it compares a freshly generated
// BENCH_serve.json against the committed baseline and fails (exit non-zero)
// when ns_per_query regresses beyond the tolerance at any batch size present
// in both documents. The tolerance defaults to 25% — wide enough for shared
// CI runners' noise, tight enough to catch a real datapath regression —
// and improvements of any size pass.
//
// Two documents are only comparable when they measured the same thing: a
// model, mode, shard-count or gomaxprocs mismatch makes the ratio meaningless
// (an 8-core candidate "beats" a 1-core baseline with the datapath slower),
// so benchdiff refuses such pairs unless -allow-env-mismatch explicitly
// accepts the skew. This used to be a printed note, which let an environment
// change masquerade as a perf result.

// envMismatch describes the comparability check between two reports: one
// line per differing environment field, empty when the pair is comparable.
// The kernels field is deliberately not gated: a kernel-selection change IS
// the datapath under test, exactly what the gate must judge.
func envMismatch(baseline, candidate benchReport) []string {
	var m []string
	if baseline.Model != candidate.Model {
		m = append(m, fmt.Sprintf("model %q vs baseline %q", candidate.Model, baseline.Model))
	}
	if baseline.Mode != candidate.Mode {
		m = append(m, fmt.Sprintf("mode %q vs baseline %q", candidate.Mode, baseline.Mode))
	}
	if baseline.Shards != candidate.Shards {
		m = append(m, fmt.Sprintf("shards %d vs baseline %d", candidate.Shards, baseline.Shards))
	}
	// Topology gate: replicas 0 (documents predating the replicated tier)
	// and 1 both mean a single unrouted server, and route is only
	// meaningful once replicated — N replicas' aggregate ns/query is not
	// one datapath's, so cross-topology ratios are refused like any other
	// environment skew.
	bReplicas, cReplicas := normReplicas(baseline.Replicas), normReplicas(candidate.Replicas)
	if bReplicas != cReplicas {
		m = append(m, fmt.Sprintf("replicas %d vs baseline %d", cReplicas, bReplicas))
	} else if bReplicas > 1 && baseline.Route != candidate.Route {
		m = append(m, fmt.Sprintf("route %q vs baseline %q", candidate.Route, baseline.Route))
	}
	if baseline.GoMaxProcs != candidate.GoMaxProcs {
		m = append(m, fmt.Sprintf("gomaxprocs %d vs baseline %d", candidate.GoMaxProcs, baseline.GoMaxProcs))
	}
	return m
}

// normReplicas folds the two spellings of "no router" — a legacy document
// with no replicas field and an explicit single replica — into 1.
func normReplicas(r int) int {
	if r < 1 {
		return 1
	}
	return r
}

// requireSameCommit enforces -require-same-commit: both documents must carry
// a build_info stamp naming the same git revision. Useful when judging two
// runs that are supposed to measure the identical binary (A/B of a flag, a
// rerun on quieter hardware) — a cross-commit pair would silently fold the
// code delta into the "noise".
func requireSameCommit(baseline, candidate benchReport) error {
	switch {
	case baseline.BuildInfo == nil:
		return fmt.Errorf("benchdiff: -require-same-commit: baseline carries no build_info (predates the provenance stamp); regenerate it")
	case candidate.BuildInfo == nil:
		return fmt.Errorf("benchdiff: -require-same-commit: candidate carries no build_info; regenerate it with a current binary")
	case baseline.BuildInfo.Revision == "unknown" || candidate.BuildInfo.Revision == "unknown":
		return fmt.Errorf("benchdiff: -require-same-commit: build_info revision is \"unknown\" (binary built outside a git checkout) — cannot prove the documents share a commit")
	case baseline.BuildInfo.Revision != candidate.BuildInfo.Revision:
		return fmt.Errorf("benchdiff: -require-same-commit: baseline is revision %s but candidate is %s — not the same code",
			baseline.BuildInfo.Revision, candidate.BuildInfo.Revision)
	}
	if baseline.BuildInfo.Dirty || candidate.BuildInfo.Dirty {
		fmt.Printf("note: same revision %s but a dirty working tree was involved (baseline dirty=%v, candidate dirty=%v)\n",
			baseline.BuildInfo.Revision, baseline.BuildInfo.Dirty, candidate.BuildInfo.Dirty)
	}
	return nil
}

// loadBenchReport reads and decodes one bench JSON document.
func loadBenchReport(path string) (benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return benchReport{}, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if rep.Benchmark != "serve" {
		return benchReport{}, fmt.Errorf("benchdiff: %s holds benchmark %q, want \"serve\"", path, rep.Benchmark)
	}
	if len(rep.Results) == 0 {
		return benchReport{}, fmt.Errorf("benchdiff: %s has no results", path)
	}
	return rep, nil
}

// diffBench compares candidate against baseline, returning one line per
// shared batch size and an error naming every regression beyond tol (a
// fraction: 0.25 = +25% ns/query).
func diffBench(baseline, candidate benchReport, tol float64) (lines []string, err error) {
	base := make(map[int]benchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Batch] = r
	}
	var regressions []string
	shared := 0
	for _, c := range candidate.Results {
		b, ok := base[c.Batch]
		if !ok {
			// A batch the baseline never measured has no gate at all;
			// skipping it would let a regression at that size ride in
			// unchecked forever. The baseline is stale — demand a new one.
			return nil, fmt.Errorf("benchdiff: baseline has no entry for batch %d (present in candidate) — regenerate the committed baseline to cover the current bench matrix", c.Batch)
		}
		shared++
		if b.NSPerQuery <= 0 {
			// A non-positive baseline would make the regression ratio
			// Inf/NaN; the document is broken, not a comparison input.
			return nil, fmt.Errorf("benchdiff: baseline batch %d records ns_per_query %v — not a usable measurement, regenerate the baseline", b.Batch, b.NSPerQuery)
		}
		if c.NSPerQuery <= 0 {
			// A zero candidate is a broken measurement, not a miraculous
			// speedup; letting it through would green-light garbage forever.
			return nil, fmt.Errorf("benchdiff: candidate batch %d records ns_per_query %v — broken measurement, not a speedup", c.Batch, c.NSPerQuery)
		}
		delta := c.NSPerQuery/b.NSPerQuery - 1
		verdict := "ok"
		if delta > tol {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("batch %d: %.0f -> %.0f ns/query (%+.1f%% > %+.1f%% tolerance)",
					c.Batch, b.NSPerQuery, c.NSPerQuery, delta*100, tol*100))
		}
		lines = append(lines, fmt.Sprintf("batch %3d: %10.0f -> %10.0f ns/query  %+7.1f%%  %s",
			c.Batch, b.NSPerQuery, c.NSPerQuery, delta*100, verdict))
	}
	if shared == 0 {
		return nil, fmt.Errorf("benchdiff: baseline and candidate share no batch sizes")
	}
	if len(regressions) > 0 {
		return lines, fmt.Errorf("benchdiff: %d regression(s): %v", len(regressions), regressions)
	}
	return lines, nil
}

func cmdBenchdiff(args []string) error {
	fs := newFlagSet("benchdiff")
	baseline := fs.String("baseline", "BENCH_serve.json", "committed baseline bench JSON")
	candidate := fs.String("candidate", "", "freshly generated bench JSON to judge (required)")
	tol := fs.Float64("tol", 0.25, "allowed ns_per_query regression fraction before failing (0.25 = +25%)")
	allowEnv := fs.Bool("allow-env-mismatch", false, "compare despite model/mode/shards/gomaxprocs differences between baseline and candidate")
	sameCommit := fs.Bool("require-same-commit", false, "refuse the comparison unless both documents carry build_info naming the same git revision (off by default: the CI gate deliberately compares the committed baseline's commit against the candidate's)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *candidate == "" {
		return fmt.Errorf("benchdiff: -candidate is required")
	}
	if *tol < 0 {
		return fmt.Errorf("benchdiff: -tol must be >= 0 (got %v)", *tol)
	}
	baseRep, err := loadBenchReport(*baseline)
	if err != nil {
		return err
	}
	candRep, err := loadBenchReport(*candidate)
	if err != nil {
		return err
	}
	if mism := envMismatch(baseRep, candRep); len(mism) > 0 {
		if !*allowEnv {
			return fmt.Errorf("benchdiff: baseline and candidate measured different environments (%s) — the ns/query ratio is not a datapath comparison; rerun in the baseline's environment or pass -allow-env-mismatch", strings.Join(mism, "; "))
		}
		fmt.Printf("note: env mismatch accepted (-allow-env-mismatch): %s\n", strings.Join(mism, "; "))
	}
	if *sameCommit {
		if err := requireSameCommit(baseRep, candRep); err != nil {
			return err
		}
	}
	if baseRep.Kernels != candRep.Kernels {
		fmt.Printf("note: kernels %q vs baseline %q\n", candRep.Kernels, baseRep.Kernels)
	}
	lines, err := diffBench(baseRep, candRep, *tol)
	for _, l := range lines {
		fmt.Println(l)
	}
	return err
}
