package main

import (
	"fmt"

	"microrec"
)

func cmdInfer(args []string) error {
	fs := newFlagSet("infer")
	modelName := fs.String("model", "small", "model: small or large")
	n := fs.Int("n", 8, "number of queries")
	seed := fs.Int64("seed", 42, "workload seed")
	fp32 := fs.Bool("fp32", false, "use the 32-bit datapath")
	zipf := fs.Bool("zipf", false, "use zipf-skewed indices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	opts := microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 1024}
	if *fp32 {
		opts.Precision = microrec.Fixed32
	}
	eng, err := microrec.NewEngine(spec, opts)
	if err != nil {
		return err
	}
	dist := microrec.Uniform
	if *zipf {
		dist = microrec.Zipf
	}
	gen, err := microrec.NewGenerator(spec, dist, *seed)
	if err != nil {
		return err
	}
	queries, err := gen.Batch(*n)
	if err != nil {
		return err
	}
	res, err := eng.Infer(queries)
	if err != nil {
		return err
	}
	for i, p := range res.Predictions {
		fmt.Printf("query %3d: CTR %.4f\n", i, p)
	}
	tm := res.Timing
	fmt.Printf("\nmodeled hardware timing (%s, %d-bit):\n", spec.Name, eng.Config().Precision.Bits)
	fmt.Printf("  single-item latency: %.1f µs\n", tm.LatencyNS/1e3)
	fmt.Printf("  embedding lookup:    %.0f ns\n", tm.LookupNS)
	fmt.Printf("  steady throughput:   %.3g items/s (bottleneck: %s)\n",
		tm.SteadyThroughputItemsPerSec(), tm.BottleneckStage)
	fmt.Printf("  batch makespan:      %.1f µs for %d items\n", tm.MakespanNS/1e3, tm.Items)
	return nil
}
