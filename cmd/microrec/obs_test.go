package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"microrec"
)

// postBurst fires n concurrent /predict requests at the mux.
func postBurst(t *testing.T, mux *http.ServeMux, n int) {
	t.Helper()
	gen, err := microrec.NewGenerator(microrec.SmallProductionModel(), microrec.Zipf, 9)
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([]string, n)
	for i := range bodies {
		b, err := json.Marshal(predictRequest{Indices: gen.Next()})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = string(b)
	}
	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(body)))
			if rec.Code != 200 {
				t.Errorf("/predict = %d: %s", rec.Code, rec.Body.String())
			}
		}(body)
	}
	wg.Wait()
}

// TestServeMuxMetricsAndTrace drives traffic through the HTTP layer and
// checks both telemetry endpoints: /metrics parses as Prometheus exposition
// with the core families, /trace as a trace-event JSON array, and bad /trace
// parameters are rejected.
func TestServeMuxMetricsAndTrace(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 8, Window: 200 * time.Microsecond, TraceSample: 1})
	postBurst(t, mux, 32)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	out := rec.Body.String()
	for _, family := range []string{"microrec_build_info", "microrec_queries_total", "microrec_latency_us_bucket", "microrec_trace_recorded_total"} {
		if !strings.Contains(out, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?last=16", nil))
	if rec.Code != 200 {
		t.Fatalf("/trace = %d: %s", rec.Code, rec.Body.String())
	}
	var events []microrec.TraceEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("/trace is not a trace-event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/trace returned no events after traced traffic")
	}
	for _, e := range events {
		if e.Ph != "X" {
			t.Fatalf("event %q phase %q, want X", e.Name, e.Ph)
		}
		if _, ok := e.Args["req"]; !ok {
			t.Fatalf("event %q lacks req arg", e.Name)
		}
	}

	for _, bad := range []string{"/trace?last=-1", "/trace?last=x", "/trace?seconds=0", "/trace?seconds=nope"} {
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", bad, rec.Code)
		}
	}
}

// TestLiveTraceSpansSumToLatency is the observability acceptance check: scrape
// GET /trace from a live server and verify each request's span slices sum to
// its recorded end-to-end latency within 10% (the flight recorder's residue
// bound — what makes the trace trustworthy for attributing tail latency).
func TestLiveTraceSpansSumToLatency(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 8, Window: 100 * time.Microsecond, TraceSample: 1})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Warm up: the first batch per size pays the one-time timing-model run,
	// which would dominate those spans' residue.
	postBurst(t, mux, 32)
	warmedAt := time.Now()
	postBurst(t, mux, 64)

	// Scrape only the post-warmup window via the server-side seconds filter.
	resp, err := http.Get(fmt.Sprintf("%s/trace?seconds=%g", ts.URL, time.Since(warmedAt).Seconds()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []microrec.TraceEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}

	// Group slices by request and compare the summed durations against the
	// e2e the summary slice carries.
	type reqAgg struct {
		sum, e2e float64
	}
	agg := map[string]*reqAgg{}
	for _, e := range events {
		raw, ok := e.Args["req"]
		if !ok {
			t.Fatalf("event %q lacks the req correlation arg", e.Name)
		}
		id := fmt.Sprint(raw)
		a := agg[id]
		if a == nil {
			a = &reqAgg{}
			agg[id] = a
		}
		a.sum += e.Dur
		if v, ok := e.Args["e2e_us"].(float64); ok {
			a.e2e = v
		}
	}
	checked := 0
	for id, a := range agg {
		if a.e2e == 0 {
			t.Fatalf("request %s: no summary slice with e2e_us", id)
		}
		residue := a.e2e - a.sum
		if residue < 0 {
			t.Errorf("request %s: slices sum %.1fµs beyond e2e %.1fµs", id, a.sum, a.e2e)
		}
		// 10% relative tolerance with a 200µs floor for µs-scale requests.
		slack := 0.10*a.e2e + 200
		if residue > slack {
			t.Errorf("request %s: slices sum %.1fµs vs e2e %.1fµs (residue %.1f > %.1f)", id, a.sum, a.e2e, residue, slack)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no post-warmup requests verified")
	}
}

// TestServeMuxPprofGate checks the profiling handlers are mounted only when
// requested.
func TestServeMuxPprofGate(t *testing.T) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := microrec.NewServer(eng, microrec.ServerOptions{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	withoutPprof := newServeMux(eng, srv, false)
	rec := httptest.NewRecorder()
	withoutPprof.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/cmdline = %d, want 404", rec.Code)
	}

	withPprof := newServeMux(eng, srv, true)
	rec = httptest.NewRecorder()
	withPprof.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/cmdline = %d, want 200", rec.Code)
	}
}

// TestCmdVersion exercises both renderings of the provenance stamp.
func TestCmdVersion(t *testing.T) {
	if err := run([]string{"version"}); err != nil {
		t.Errorf("version: %v", err)
	}
	if err := run([]string{"version", "-json"}); err != nil {
		t.Errorf("version -json: %v", err)
	}
}

// TestCmdSmoke runs the observability smoke check end to end against an
// in-process server — the same path CI's obs-smoke step drives over
// localhost.
func TestCmdSmoke(t *testing.T) {
	mux, _ := testMux(t, microrec.ServerOptions{MaxBatch: 8, Window: 200 * time.Microsecond, TraceSample: 1})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if err := run([]string{"smoke", "-addr", ts.URL, "-n", "32"}); err != nil {
		t.Fatalf("smoke: %v", err)
	}
	if err := run([]string{"smoke", "-addr", "http://127.0.0.1:1", "-n", "4", "-timeout", "500ms"}); err == nil {
		t.Error("smoke against a dead address: want error")
	}
}
