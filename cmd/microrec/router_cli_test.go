package main

import (
	"encoding/json"
	"flag"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"microrec"
)

// parseTopology runs the shared topology flags through a throwaway FlagSet,
// mirroring how serve/bench/loadtest consume them.
func parseTopology(t *testing.T, args ...string) *topology {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	topo := addTopologyFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyFlagValidation(t *testing.T) {
	topo := parseTopology(t, "-replicas", "3", "-route", "affinity", "-shards", "2")
	if err := topo.validate("test"); err != nil {
		t.Fatal(err)
	}
	if !topo.routed() || topo.policy != microrec.RouteAffinity {
		t.Fatalf("routed=%v policy=%q after -replicas 3 -route affinity", topo.routed(), topo.policy)
	}
	if topo = parseTopology(t, "-replicas", "0"); topo.validate("test") == nil {
		t.Fatal("-replicas 0 accepted")
	}
	if topo = parseTopology(t, "-route", "random"); topo.validate("test") == nil {
		t.Fatal("-route random accepted")
	}
	if topo = parseTopology(t); topo.validate("test") != nil || topo.routed() {
		t.Fatal("defaults must validate as a single unrouted replica")
	}
}

// TestServeMuxRouted drives the HTTP API with a router behind it instead of
// a single server: /predict serves, and /stats carries the router section
// with both replicas on the scoreboard.
func TestServeMuxRouted(t *testing.T) {
	spec := microrec.SmallProductionModel()
	topo := parseTopology(t, "-replicas", "2", "-route", "round-robin")
	if err := topo.validate("test"); err != nil {
		t.Fatal(err)
	}
	rt, eng, err := topo.buildRouter(spec,
		microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64},
		microrec.ServerOptions{Batching: microrec.BatchingOptions{MaxBatch: 4, Window: 200 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	mux := newServeMux(eng, rt, false)

	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		body, err := json.Marshal(predictRequest{Indices: gen.Next()})
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", strings.NewReader(string(body))))
		if rec.Code != 200 {
			t.Fatalf("routed /predict %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("/stats status %d", rec.Code)
	}
	var st microrec.ServerStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Router == nil {
		t.Fatal("routed /stats has no router section")
	}
	if st.Router.Replicas != 2 || len(st.Router.PerReplica) != 2 {
		t.Fatalf("router section reports %d replicas (%d rows), want 2",
			st.Router.Replicas, len(st.Router.PerReplica))
	}
	if st.Router.Policy != string(microrec.RouteRoundRobin) {
		t.Fatalf("router policy %q, want round-robin", st.Router.Policy)
	}
	var routed uint64
	for _, rs := range st.Router.PerReplica {
		routed += rs.Routed
	}
	if routed != 8 {
		t.Fatalf("replicas report %d routed requests, want 8", routed)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "microrec_router_replicas 2") {
		t.Fatalf("/metrics lacks the router families (status %d)", rec.Code)
	}
}

// TestBenchdiffTopologyGate pins the cross-topology refusal: a routed
// candidate cannot be judged against a single-replica baseline, matched
// topologies compare, and a legacy baseline without the replicas field is
// one and the same as an explicit single replica.
func TestBenchdiffTopologyGate(t *testing.T) {
	dir := t.TempDir()
	single := serveReport(map[int]float64{1: 1000, 16: 500, 64: 300})
	routed := single
	routed.Replicas, routed.Route = 2, "affinity"

	base := writeBenchJSON(t, dir, "base.json", single)
	cand := writeBenchJSON(t, dir, "routed.json", routed)
	err := cmdBenchdiff([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "replicas") {
		t.Fatalf("routed-vs-single comparison: %v; want a replicas mismatch refusal", err)
	}
	// -allow-env-mismatch still overrides, like every other env skew.
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", cand, "-allow-env-mismatch"}); err != nil {
		t.Fatalf("explicit override refused: %v", err)
	}

	// Same replica count but different policies: also not one datapath.
	other := routed
	other.Route = "least-loaded"
	routedBase := writeBenchJSON(t, dir, "routed_base.json", routed)
	otherCand := writeBenchJSON(t, dir, "other.json", other)
	if err := cmdBenchdiff([]string{"-baseline", routedBase, "-candidate", otherCand}); err == nil || !strings.Contains(err.Error(), "route") {
		t.Fatalf("cross-policy comparison: %v; want a route mismatch refusal", err)
	}

	// Matched routed topologies compare normally.
	if err := cmdBenchdiff([]string{"-baseline", routedBase, "-candidate", writeBenchJSON(t, dir, "routed2.json", routed)}); err != nil {
		t.Fatalf("matched routed comparison failed: %v", err)
	}

	// An explicit -replicas 1 candidate against a legacy baseline (no
	// replicas field) is the same topology, not a mismatch.
	one := single
	one.Replicas = 1
	if err := cmdBenchdiff([]string{"-baseline", base, "-candidate", writeBenchJSON(t, dir, "one.json", one)}); err != nil {
		t.Fatalf("replicas=1 vs legacy baseline refused: %v", err)
	}
}
