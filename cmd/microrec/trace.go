package main

import (
	"fmt"
	"os"

	"microrec"
)

func cmdTrace(args []string) error {
	fs := newFlagSet("trace")
	modelName := fs.String("model", "small", "model: small or large")
	items := fs.Int("items", 32, "items to trace")
	out := fs.String("o", "trace.json", "output file (chrome://tracing JSON)")
	fp32 := fs.Bool("fp32", false, "use the 32-bit datapath")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	opts := microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64}
	if *fp32 {
		opts.Precision = microrec.Fixed32
	}
	eng, err := microrec.NewEngine(spec, opts)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	rep, traceErr := eng.TracePipeline(*items, f)
	if closeErr := f.Close(); traceErr == nil {
		traceErr = closeErr
	}
	if traceErr != nil {
		return traceErr
	}
	fmt.Printf("wrote %s: %d items, makespan %.1f µs, bottleneck %s\n",
		*out, rep.Items, rep.MakespanNS/1e3, rep.BottleneckStage)
	fmt.Println("open in chrome://tracing or https://ui.perfetto.dev")
	return nil
}
