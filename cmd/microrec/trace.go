package main

import (
	"fmt"
	"io"
	"net/http"
	"os"

	"microrec"
)

// cmdTrace exports a chrome://tracing / Perfetto trace. The default path is a
// SIMULATION: it replays the pipesim timing model of the accelerator pipeline
// (the same recurrence the placement search and SLA validation evaluate) —
// no real requests are involved. With -live it instead scrapes GET /trace
// from a running `microrec serve` instance, which renders the flight
// recorder's spans of actual served requests. Both paths emit the identical
// trace-event JSON format (shared writer in internal/obs).
func cmdTrace(args []string) error {
	fs := newFlagSet("trace")
	modelName := fs.String("model", "small", "model: small or large (simulated mode)")
	items := fs.Int("items", 32, "items to trace (simulated mode)")
	out := fs.String("o", "trace.json", "output file (chrome://tracing JSON)")
	fp32 := fs.Bool("fp32", false, "use the 32-bit datapath (simulated mode)")
	live := fs.Bool("live", false, "scrape real request spans from a running server's GET /trace instead of simulating")
	addr := fs.String("addr", "http://localhost:8080", "server base URL (-live)")
	last := fs.Int("last", 0, "keep only the newest N spans, 0 = whole ring (-live)")
	seconds := fs.Float64("seconds", 0, "keep only spans from the trailing S seconds, 0 = no window (-live)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *live {
		return traceLive(*addr, *out, *last, *seconds)
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	opts := microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64}
	if *fp32 {
		opts.Precision = microrec.Fixed32
	}
	eng, err := microrec.NewEngine(spec, opts)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	rep, traceErr := eng.TracePipeline(*items, f)
	if closeErr := f.Close(); traceErr == nil {
		traceErr = closeErr
	}
	if traceErr != nil {
		return traceErr
	}
	fmt.Printf("wrote %s (simulated pipeline, no live traffic): %d items, makespan %.1f µs, bottleneck %s\n",
		*out, rep.Items, rep.MakespanNS/1e3, rep.BottleneckStage)
	fmt.Println("open in chrome://tracing or https://ui.perfetto.dev; for real request spans use -live against a running server")
	return nil
}

// traceLive fetches GET /trace from a running server and writes the JSON to
// the output file unmodified — the server already emits trace-event format.
func traceLive(base, out string, last int, seconds float64) error {
	url := base + "/trace?"
	if last > 0 {
		url += fmt.Sprintf("last=%d&", last)
	}
	if seconds > 0 {
		url += fmt.Sprintf("seconds=%g&", seconds)
	}
	url = url[:len(url)-1]
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("trace: scraping %s (is `microrec serve` running?): %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("trace: %s returned %s: %s", url, resp.Status, body)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	n, copyErr := io.Copy(f, resp.Body)
	if closeErr := f.Close(); copyErr == nil {
		copyErr = closeErr
	}
	if copyErr != nil {
		return copyErr
	}
	fmt.Printf("wrote %s (%d bytes of live request spans from %s)\n", out, n, url)
	fmt.Println("open in chrome://tracing or https://ui.perfetto.dev")
	return nil
}
