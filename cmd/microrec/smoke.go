package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microrec"
)

// expositionSample matches one valid Prometheus text-format sample line
// (metric name, optional label set, value, optional timestamp).
var expositionSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)( [0-9]+)?$`)

// cmdSmoke is the observability end-to-end check: it drives a burst of real
// /predict traffic at a running server, then scrapes GET /metrics and
// GET /trace and validates both — the exposition parses as Prometheus text
// format and carries the expected families; the trace parses as a Chrome
// trace-event JSON array with spans from the traffic just sent. CI runs this
// (via `make obs-smoke`) against a freshly started server so a format
// regression in either endpoint fails the build.
func cmdSmoke(args []string) error {
	fs := newFlagSet("smoke")
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	modelName := fs.String("model", "small", "model the server was started with: small or large")
	n := fs.Int("n", 64, "queries to send before scraping")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if err := waitHealthy(ctx, *addr); err != nil {
		return err
	}
	served, err := smokeTraffic(ctx, *addr, spec, *n)
	if err != nil {
		return err
	}
	if err := smokeMetrics(ctx, *addr); err != nil {
		return err
	}
	spans, err := smokeTrace(ctx, *addr)
	if err != nil {
		return err
	}
	fmt.Printf("smoke ok: %d/%d queries served, /metrics valid exposition, /trace carries %d live span slices\n",
		served, *n, spans)
	return nil
}

// waitHealthy polls /healthz until the server answers or the context expires.
func waitHealthy(ctx context.Context, base string) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("smoke: server at %s never became healthy: %w", base, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// smokeTraffic POSTs n generated queries to /predict (shed 429s are tolerated
// under load, every other failure is not) and returns how many were served.
func smokeTraffic(ctx context.Context, base string, spec *microrec.Spec, n int) (int, error) {
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 11)
	if err != nil {
		return 0, err
	}
	bodies := make([][]byte, n)
	for i := range bodies {
		b, err := json.Marshal(predictRequest{Indices: gen.Next()})
		if err != nil {
			return 0, err
		}
		bodies[i] = b
	}
	var served atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/predict", bytes.NewReader(body))
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests: // shed under burst: fine
			default:
				firstErr.CompareAndSwap(nil, fmt.Errorf("/predict returned %s", resp.Status))
			}
		}(body)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return int(served.Load()), fmt.Errorf("smoke: traffic: %w", err)
	}
	if served.Load() == 0 {
		return 0, fmt.Errorf("smoke: none of the %d queries were served", n)
	}
	return int(served.Load()), nil
}

// smokeMetrics validates the /metrics exposition: every line is a comment or
// a well-formed sample, and the families the dashboards scrape are present.
func smokeMetrics(ctx context.Context, base string) error {
	body, err := fetch(ctx, base+"/metrics")
	if err != nil {
		return err
	}
	out := string(body)
	for _, family := range []string{
		"microrec_build_info",
		"microrec_queries_total",
		"microrec_latency_us_bucket",
		"microrec_latency_us_count",
		"microrec_trace_recorded_total",
	} {
		if !strings.Contains(out, family) {
			return fmt.Errorf("smoke: /metrics missing family %q", family)
		}
	}
	if !strings.Contains(out, `le="+Inf"`) {
		return fmt.Errorf("smoke: /metrics latency histogram missing +Inf bucket")
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionSample.MatchString(line) {
			return fmt.Errorf("smoke: malformed /metrics line: %q", line)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("smoke: /metrics exposition carried no samples")
	}
	return nil
}

// smokeTrace validates GET /trace: a JSON array of Chrome trace-event
// complete slices carrying spans of the traffic smokeTraffic just sent.
func smokeTrace(ctx context.Context, base string) (int, error) {
	body, err := fetch(ctx, base+"/trace?last=256")
	if err != nil {
		return 0, err
	}
	var events []microrec.TraceEvent
	if err := json.Unmarshal(body, &events); err != nil {
		return 0, fmt.Errorf("smoke: /trace is not a trace-event JSON array: %w", err)
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("smoke: /trace returned no spans after live traffic (sampling broken?)")
	}
	for _, e := range events {
		if e.Ph != "X" {
			return 0, fmt.Errorf("smoke: /trace event %q has phase %q, want complete slices (\"X\")", e.Name, e.Ph)
		}
		if e.Dur < 0 || e.TS < 0 {
			return 0, fmt.Errorf("smoke: /trace event %q has negative ts/dur (%v/%v)", e.Name, e.TS, e.Dur)
		}
		if _, ok := e.Args["req"]; !ok {
			return 0, fmt.Errorf("smoke: /trace event %q lacks the req correlation arg", e.Name)
		}
	}
	return len(events), nil
}

// fetch GETs a URL and returns its body, insisting on HTTP 200.
func fetch(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("smoke: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("smoke: %s returned %s: %s", url, resp.Status, body)
	}
	return body, nil
}
