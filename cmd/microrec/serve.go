package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"microrec"
)

// predictRequest is the JSON body of POST /predict: per-table lookup indices.
type predictRequest struct {
	// Indices[t] lists the row indices for table t, in model order.
	Indices [][]int64 `json:"indices"`
}

type predictResponse struct {
	CTR float64 `json:"ctr"`
	// ModeledLatencyUS is the accelerator's modeled single-item latency.
	ModeledLatencyUS float64 `json:"modeled_latency_us"`
	// WallTimeUS is the actual server-side compute time.
	WallTimeUS float64 `json:"wall_time_us"`
}

type modelInfoResponse struct {
	Name       string `json:"name"`
	Tables     int    `json:"tables"`
	FeatureLen int    `json:"feature_len"`
	Precision  int    `json:"precision_bits"`
	LookupNS   int64  `json:"lookup_ns"`
}

// newServeMux builds the HTTP API around an engine (split out for tests).
func newServeMux(eng *microrec.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	spec := eng.Spec()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		q := make(microrec.Query, len(req.Indices))
		for i := range req.Indices {
			q[i] = req.Indices[i]
		}
		start := time.Now()
		ctr, err := eng.InferOne(q)
		if err != nil {
			http.Error(w, "inference: "+err.Error(), http.StatusBadRequest)
			return
		}
		rep, err := eng.Timing(1)
		if err != nil {
			http.Error(w, "timing: "+err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, predictResponse{
			CTR:              float64(ctr),
			ModeledLatencyUS: rep.LatencyNS / 1e3,
			WallTimeUS:       float64(time.Since(start).Microseconds()),
		})
	})
	mux.HandleFunc("/model", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, modelInfoResponse{
			Name:       spec.Name,
			Tables:     len(spec.Tables),
			FeatureLen: spec.FeatureLen(),
			Precision:  eng.Config().Precision.Bits,
			LookupNS:   int64(eng.LookupNS()),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode: %v", err)
	}
}

func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", ":8080", "listen address")
	modelName := fs.String("model", "small", "model: small or large")
	fp32 := fs.Bool("fp32", false, "use the 32-bit datapath")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	opts := microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 4096}
	if *fp32 {
		opts.Precision = microrec.Fixed32
	}
	eng, err := microrec.NewEngine(spec, opts)
	if err != nil {
		return err
	}
	log.Printf("serving %s (%d-bit) on %s — POST /predict, GET /model, GET /healthz",
		spec.Name, eng.Config().Precision.Bits, *addr)
	return http.ListenAndServe(*addr, newServeMux(eng))
}
