package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"microrec"
)

// predictRequest is the JSON body of POST /predict: per-table lookup indices.
type predictRequest struct {
	// Indices[t] lists the row indices for table t, in model order.
	Indices [][]int64 `json:"indices"`
}

type predictResponse struct {
	CTR float64 `json:"ctr"`
	// ModeledLatencyUS is the accelerator's modeled single-item latency.
	ModeledLatencyUS float64 `json:"modeled_latency_us"`
	// WallTimeUS is the observed submit-to-response serving latency.
	WallTimeUS float64 `json:"wall_time_us"`
	// BatchSize is the size of the micro-batch that served this query.
	BatchSize int `json:"batch_size"`
}

type modelInfoResponse struct {
	Name       string `json:"name"`
	Tables     int    `json:"tables"`
	FeatureLen int    `json:"feature_len"`
	Precision  int    `json:"precision_bits"`
	LookupNS   int64  `json:"lookup_ns"`
}

// serveTarget is the serving surface the HTTP API fronts: a single batched
// *microrec.Server, or a *microrec.Router spreading requests over N server
// replicas. Both expose the same predict/stats/trace/metrics seam, so the
// mux never cares which topology is behind it.
type serveTarget interface {
	Submit(ctx context.Context, q microrec.Query) (microrec.ServeResult, error)
	RetryAfter() time.Duration
	Stats() microrec.ServerStats
	Trace(last int, since time.Time) []microrec.TraceSpan
	WriteMetrics(w io.Writer) error
}

var (
	_ serveTarget = (*microrec.Server)(nil)
	_ serveTarget = (*microrec.Router)(nil)
)

// newServeMux builds the HTTP API around an engine and its serving target
// (split out for tests). Requests to /predict are coalesced by srv into
// micro-batches; /stats exposes the target's rolling serving statistics
// (with a router section when srv is a replicated tier), /metrics the same
// telemetry in Prometheus text format, and /trace the flight recorder's
// recent spans as a chrome://tracing JSON document (replica-tagged when
// routed). When withPprof is set the net/http/pprof profiling handlers are
// mounted under /debug/pprof/. In routed mode eng is the first replica's
// engine, used only for /model introspection — replicas are bit-identical
// by construction.
func newServeMux(eng *microrec.Engine, srv serveTarget, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	spec := eng.Spec()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		q := make(microrec.Query, len(req.Indices))
		for i := range req.Indices {
			q[i] = req.Indices[i]
		}
		res, err := srv.Submit(r.Context(), q)
		if err != nil {
			switch {
			case errors.Is(err, microrec.ErrInvalidQuery):
				http.Error(w, err.Error(), http.StatusBadRequest)
			case errors.Is(err, microrec.ErrOverloaded):
				// Load shed: tell the client when a queue slot should free
				// (the pipesim-predicted steady-state batch interval,
				// rounded up to the header's whole-second granularity).
				retry := int(math.Ceil(srv.RetryAfter().Seconds()))
				if retry < 1 {
					retry = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(retry))
				http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
			case errors.Is(err, microrec.ErrExpired):
				http.Error(w, "deadline expired before service", http.StatusGatewayTimeout)
			case errors.Is(err, microrec.ErrServerClosed):
				http.Error(w, "server closed", http.StatusServiceUnavailable)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				http.Error(w, "request cancelled", http.StatusServiceUnavailable)
			default:
				// Validated queries only fail on engine faults.
				http.Error(w, "inference: "+err.Error(), http.StatusInternalServerError)
			}
			return
		}
		writeJSON(w, predictResponse{
			CTR:              float64(res.CTR),
			ModeledLatencyUS: res.ModeledLatencyUS,
			WallTimeUS:       float64(res.WallTime.Microseconds()),
			BatchSize:        res.BatchSize,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := srv.WriteMetrics(w); err != nil {
			log.Printf("serve: metrics: %v", err)
		}
	})
	// GET /trace?last=N&seconds=S — the flight recorder's recent spans as a
	// Chrome trace-event JSON array (open in chrome://tracing or Perfetto).
	// last bounds the span count (0 = the whole ring); seconds keeps only
	// spans that started within the trailing window.
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		last := 0
		if s := q.Get("last"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad last: want a non-negative integer", http.StatusBadRequest)
				return
			}
			last = n
		}
		var since time.Time
		if s := q.Get("seconds"); s != "" {
			sec, err := strconv.ParseFloat(s, 64)
			if err != nil || sec <= 0 {
				http.Error(w, "bad seconds: want a positive number", http.StatusBadRequest)
				return
			}
			since = time.Now().Add(-time.Duration(sec * float64(time.Second)))
		}
		w.Header().Set("Content-Type", "application/json")
		events := microrec.SpanTraceEvents(srv.Trace(last, since))
		if err := microrec.WriteTraceEvents(w, events); err != nil {
			log.Printf("serve: trace: %v", err)
		}
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/model", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, modelInfoResponse{
			Name:       spec.Name,
			Tables:     len(spec.Tables),
			FeatureLen: spec.FeatureLen(),
			Precision:  eng.Config().Precision.Bits,
			LookupNS:   int64(eng.LookupNS()),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode: %v", err)
	}
}

func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", ":8080", "listen address")
	modelName := fs.String("model", "small", "model: small or large")
	fp32 := fs.Bool("fp32", false, "use the 32-bit datapath")
	batch := fs.Int("batch", 64, "max micro-batch size")
	window := fs.Duration("window", 200*time.Microsecond, "micro-batch flush window")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "engine worker pool size (worker-pool fallback mode only)")
	pipelineDepth := fs.Int("pipeline-depth", 3, "batch planes in the pipelined drain's in-flight ring (>= 2); per-stage occupancy appears in /stats")
	workerPool := fs.Bool("worker-pool", false, "drain batches on the flat engine worker pool instead of the staged gather/GEMM pipeline")
	slaBudget := fs.Duration("sla", 0, "tail-latency budget: validates the window at startup and becomes each request's serving deadline (expired requests are dropped before gather/GEMM; 0 = skip)")
	queue := fs.Int("queue", 0, "submit queue depth (0 = 4x batch); with -shed this bounds every admitted request's queueing delay")
	shed := fs.Bool("shed", false, "fail fast with 429 + Retry-After when the submit queue is full, instead of blocking on backpressure")
	hotCache := fs.Int64("hotcache", 0, "live hot-row cache capacity in bytes per replica (0 = off; with -shards, split across per-shard caches); hit rate and effective lookup latency appear in /stats")
	topo := addTopologyFlags(fs)
	traceSample := fs.Int("trace-sample", microrec.DefaultTraceSample, "flight-recorder head sampling: record every Nth request's span (1 = every request, visible at GET /trace)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	applyColdTier := addColdTierFlags(fs, "serve")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The server treats zero options as "use the default", so reject
	// explicit zeros here instead of silently remapping them.
	if *batch < 1 {
		return fmt.Errorf("serve: -batch must be >= 1 (got %d); use -batch 1 for per-query serving", *batch)
	}
	if *window <= 0 {
		return fmt.Errorf("serve: -window must be > 0 (got %v); for per-query serving use -batch 1, which flushes on every request", *window)
	}
	if *workers < 1 {
		return fmt.Errorf("serve: -workers must be >= 1 (got %d)", *workers)
	}
	if !*workerPool && *pipelineDepth < 2 {
		return fmt.Errorf("serve: -pipeline-depth must be >= 2 (got %d); stage overlap needs two planes, or select -worker-pool", *pipelineDepth)
	}
	if *hotCache < 0 {
		return fmt.Errorf("serve: -hotcache must be >= 0 bytes (got %d)", *hotCache)
	}
	if *queue < 0 {
		return fmt.Errorf("serve: -queue must be >= 0 (got %d)", *queue)
	}
	if *slaBudget < 0 {
		return fmt.Errorf("serve: -sla must be >= 0 (got %v)", *slaBudget)
	}
	if err := topo.validate("serve"); err != nil {
		return err
	}
	if *traceSample < 1 {
		return fmt.Errorf("serve: -trace-sample must be >= 1 (got %d); use 1 to trace every request", *traceSample)
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	opts := microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 4096, HotCacheBytes: *hotCache}
	if *fp32 {
		opts.Precision = microrec.Fixed32
	}
	if err := applyColdTier(&opts); err != nil {
		return err
	}
	sopts := microrec.ServerOptions{
		Batching:  microrec.BatchingOptions{MaxBatch: *batch, Window: *window},
		Pipeline:  microrec.PipelineOptions{Depth: *pipelineDepth, WorkerPool: *workerPool, Workers: *workers},
		Admission: microrec.AdmissionOptions{QueueDepth: *queue, Shed: *shed, SLA: *slaBudget},
		Tier:      microrec.TierOptions{Shards: *topo.shards},
		Trace:     microrec.TraceOptions{Sample: *traceSample},
	}
	var (
		target serveTarget
		eng    *microrec.Engine
	)
	if topo.routed() {
		rt, first, err := topo.buildRouter(spec, opts, sopts)
		if err != nil {
			return err
		}
		defer rt.Close()
		target, eng = rt, first
		if *slaBudget > 0 {
			log.Printf("window %v, SLA budget %v enforced per request on each replica", *window, *slaBudget)
		}
	} else {
		var err error
		eng, err = microrec.NewEngine(spec, opts)
		if err != nil {
			return err
		}
		defer eng.Close()
		srv, err := microrec.NewServer(eng, sopts)
		if err != nil {
			return err
		}
		defer srv.Close()
		target = srv
		if *slaBudget > 0 {
			if err := srv.ValidateSLA(*slaBudget); err != nil {
				if maxW, werr := srv.MaxWindowUnderSLA(*slaBudget); werr == nil {
					return fmt.Errorf("batching window violates the SLA budget (largest feasible window: %v): %w",
						maxW.Round(time.Microsecond), err)
				}
				return fmt.Errorf("batching window violates the SLA budget: %w", err)
			}
			if worst, expected, err := srv.AdmittedLatencyBounds(); err == nil {
				log.Printf("window %v validated against SLA budget %v (worst-case admitted %v cache-cold, expected %v)",
					*window, *slaBudget, worst.Round(time.Microsecond), expected.Round(time.Microsecond))
			} else {
				log.Printf("window %v validated against SLA budget %v", *window, *slaBudget)
			}
		}
	}
	cacheNote := ""
	if *hotCache > 0 {
		cacheNote = fmt.Sprintf(", hot-row cache %d B", *hotCache)
	}
	if tier := tierSnapshot(eng); tier != nil {
		cacheNote += fmt.Sprintf(", tiered store (hot budget %d B of %d B, cold latency %.0f ns)",
			tier.HotBudgetBytes, tier.TotalBytes, tier.ColdLatencyNS)
	}
	if *shed {
		cacheNote += fmt.Sprintf(", shedding at queue depth %d", target.Stats().Admission.QueueCapacity)
	}
	drainNote := fmt.Sprintf("pipelined drain, %d planes", *pipelineDepth)
	if *workerPool {
		drainNote = fmt.Sprintf("worker pool, %d workers", *workers)
	}
	if *topo.shards > 1 {
		drainNote += fmt.Sprintf(", %d gather shards", *topo.shards)
	}
	if topo.routed() {
		drainNote += fmt.Sprintf(", %d replicas routed %s", *topo.replicas, topo.policy)
	}
	endpoints := "POST /predict, GET /model, GET /stats, GET /metrics, GET /trace, GET /healthz"
	if *pprofOn {
		endpoints += ", GET /debug/pprof/"
	}
	log.Printf("serving %s (%d-bit) on %s — batch %d, window %v, %s%s, tracing 1-in-%d — %s",
		spec.Name, eng.Config().Precision.Bits, *addr, *batch, *window, drainNote, cacheNote, *traceSample, endpoints)
	return http.ListenAndServe(*addr, newServeMux(eng, target, *pprofOn))
}
