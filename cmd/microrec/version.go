package main

import (
	"encoding/json"
	"fmt"
	"os"

	"microrec"
)

// cmdVersion prints the binary's build provenance: the same build_info
// document stamped into /stats, /metrics and the BENCH JSONs, so a report
// can always be matched back to the binary that produced it.
func cmdVersion(args []string) error {
	fs := newFlagSet("version")
	asJSON := fs.Bool("json", false, "emit the build_info JSON document")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bi := microrec.ReadBuildInfo()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(bi)
	}
	dirty := ""
	if bi.Dirty {
		dirty = " (dirty)"
	}
	fmt.Printf("microrec revision %s%s\n", bi.Revision, dirty)
	fmt.Printf("go        %s\n", bi.GoVersion)
	fmt.Printf("kernels   %s\n", bi.Kernels)
	return nil
}
