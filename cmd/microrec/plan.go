package main

import (
	"fmt"

	"microrec/internal/core"
	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
	"microrec/internal/placement"
)

func specByName(name string) (*model.Spec, int, error) {
	switch name {
	case "small":
		return model.SmallProduction(), core.SmallFP16().OnChipBanks, nil
	case "large":
		return model.LargeProduction(), core.LargeFP16().OnChipBanks, nil
	default:
		return nil, 0, fmt.Errorf("unknown model %q (want small or large)", name)
	}
}

func cmdPlan(args []string) error {
	fs := newFlagSet("plan")
	modelName := fs.String("model", "small", "model to plan: small or large")
	noCart := fs.Bool("no-cartesian", false, "disable Cartesian products")
	lpt := fs.Bool("lpt", false, "use the LPT allocator")
	verbose := fs.Bool("v", false, "print every physical table's bank assignment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, banks, err := specByName(*modelName)
	if err != nil {
		return err
	}
	alloc := placement.RoundRobin
	if *lpt {
		alloc = placement.LPT
	}
	sys := memsim.U280(banks)
	res, err := placement.Plan(spec, sys, placement.Options{
		EnableCartesian: !*noCart,
		Allocator:       alloc,
	})
	if err != nil {
		return err
	}
	fmt.Printf("model:            %s (%d tables, %s)\n", spec.Name, len(spec.Tables),
		metrics.FmtBytes(spec.TotalBytes()))
	fmt.Printf("allocator:        %v\n", alloc)
	fmt.Printf("cartesian:        %v (candidates n=%d, %d products)\n",
		!*noCart, res.CandidateCount, res.Layout.NumMerged())
	fmt.Printf("physical tables:  %d (%d on-chip, %d in DRAM)\n",
		len(res.Layout.Tables), res.OnChipTables(), res.DRAMTables())
	fmt.Printf("DRAM rounds:      %d\n", res.Report.MaxOffChipRounds)
	fmt.Printf("storage:          %s (%.1f%% of baseline)\n",
		metrics.FmtBytes(res.StorageBytes()), 100*(1+res.Layout.OverheadFraction()))
	fmt.Printf("lookup latency:   %.0f ns (bottleneck bank %d)\n",
		res.Report.LatencyNS, res.Report.Bottleneck)
	if *verbose {
		t := metrics.NewTable("assignment", "physical table", "rows", "dim", "bytes", "bank", "kind")
		for ti, pt := range res.Layout.Tables {
			b := res.BankOf[ti]
			t.AddRow(pt.Name(),
				fmt.Sprint(pt.Rows()), fmt.Sprint(pt.Dim()),
				metrics.FmtBytes(pt.Bytes()),
				fmt.Sprint(b), sys.Banks[b].Kind.String())
		}
		fmt.Println()
		fmt.Print(t.String())
	}
	return nil
}
