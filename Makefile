GO ?= go

.PHONY: build test race bench ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# ci is the one-command tier-1 + race check.
ci: build test race
