GO ?= go
# Scratch dir for CI-shaped bench runs, so `make benchdiff` never overwrites
# the committed BENCH_*.json baselines.
BENCH_SCRATCH ?= /tmp/microrec-bench

.PHONY: build vet vet-custom fmt-check test test-noasm race bench bench-json loadtest-json bench-smoke benchdiff obs-smoke fuzz-smoke vulncheck ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet-custom runs microrec-vet, the repo's own go/analysis suite (lockheld,
# hotalloc, atomicfield, statsnapshot): the mechanized concurrency and
# zero-alloc invariants of the datapath. Exit 2 = findings.
vet-custom:
	$(GO) run ./cmd/microrec-vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt required on:"; echo "$$out"; exit 1; fi

test: build
	$(GO) test ./...

# test-noasm forces the portable kernel path (the noasm build tag disables
# every optimized kernel, Features() reports "portable") and reruns the whole
# suite — including the kernel bit-identity property tests, which then prove
# the reference path against itself, and every datapath golden test, which
# must not notice the kernel swap.
test-noasm:
	$(GO) build -tags noasm ./...
	$(GO) test -tags noasm ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-json measures serving ns/query at batch 1/16/64 (pipelined drain)
# and writes BENCH_serve.json, so the perf trajectory is tracked across PRs.
# GOMAXPROCS is pinned to 1 so the committed baseline measures the datapath,
# not the host's core count — benchdiff refuses candidates whose gomaxprocs
# differs from the baseline's.
# Built as a binary (not `go run`) so the document's build_info carries the
# git revision — `go run` skips VCS stamping and would record "unknown".
bench-json:
	mkdir -p $(BENCH_SCRATCH)
	$(GO) build -o $(BENCH_SCRATCH)/microrec ./cmd/microrec
	GOMAXPROCS=1 $(BENCH_SCRATCH)/microrec bench -o BENCH_serve.json

# loadtest-json sweeps open-loop offered load through 2.5x saturation and
# writes BENCH_loadtest.json: the knee (max qps meeting the SLA), per-level
# admitted-tail latency, and shed fail-fast times — the overload-behaviour
# trajectory next to bench-json's throughput trajectory.
# COLD=1 runs the tiered-store configuration instead: the model backed by an
# mmap'd cold tier 4x the DRAM hot budget, the committed BENCH_loadtest.json
# shape (demonstrates bounded admitted p99 on a model larger than DRAM).
loadtest-json:
	mkdir -p $(BENCH_SCRATCH)
	$(GO) build -o $(BENCH_SCRATCH)/microrec ./cmd/microrec
ifeq ($(COLD),1)
	$(BENCH_SCRATCH)/microrec loadtest -cold-tier tmp -o BENCH_loadtest.json
else
	$(BENCH_SCRATCH)/microrec loadtest -o BENCH_loadtest.json
endif

# bench-smoke runs the datapath/serving benchmarks once each — a fast check
# that the hot paths still execute, used by CI. The kernel microbenchmarks
# ride along so the SIMD paths are exercised under the bench harness too.
bench-smoke:
	$(GO) test -run xxx -bench 'Gather|Serve|EngineInferOne|Pipeline' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench 'GEMMKernel|QuantizeRow' -benchtime 1x -benchmem ./internal/kernels

# benchdiff is the bench-regression gate: regenerate a smoke-scale serve
# bench into the scratch dir and fail if ns/query regressed >25% against the
# committed baseline at any batch size (exactly the CI step). The candidate
# runs under GOMAXPROCS=1 to match the committed baseline's environment;
# benchdiff fails on a gomaxprocs mismatch rather than comparing across it.
benchdiff:
	mkdir -p $(BENCH_SCRATCH)
	GOMAXPROCS=1 $(GO) run ./cmd/microrec bench -n 512 -o $(BENCH_SCRATCH)/BENCH_serve.json
	$(GO) run ./cmd/microrec benchdiff -baseline BENCH_serve.json -candidate $(BENCH_SCRATCH)/BENCH_serve.json

# fuzz-smoke gives each fuzz target a short budget (exactly the CI step):
# enough to replay the corpus and catch shallow regressions in the histogram
# quantile math and the obs trace/metrics writers without stalling the build.
fuzz-smoke:
	$(GO) test ./internal/metrics -fuzz FuzzHistogramQuantile -fuzztime 10s -run '^$$'
	$(GO) test ./internal/obs -fuzz FuzzSpanTraceEvents -fuzztime 10s -run '^$$'
	$(GO) test ./internal/obs -fuzz FuzzMetricWriter -fuzztime 10s -run '^$$'

# vulncheck scans the module against the Go vulnerability database when
# govulncheck is installed; skipped (with a note) where it isn't — the tool
# needs network access, so offline dev boxes stay green.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# obs-smoke is the observability end-to-end check (exactly the CI step): a
# live server with tracing + pprof on, real traffic, and validation of the
# /metrics Prometheus exposition, the /trace trace-event JSON, and the pprof
# mount.
obs-smoke:
	GO=$(GO) sh scripts/obs_smoke.sh

# ci mirrors the CI job sequence locally (lint job + test job, one leg), so a
# red CI reproduces in one command.
ci: build vet vet-custom fmt-check test test-noasm race bench-smoke benchdiff obs-smoke fuzz-smoke vulncheck
