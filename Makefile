GO ?= go

.PHONY: build test race bench bench-smoke ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-smoke runs the datapath/serving benchmarks once each — a fast check
# that the hot paths still execute, used by CI.
bench-smoke:
	$(GO) test -run xxx -bench 'Gather|Serve|EngineInferOne' -benchtime 1x -benchmem .

# ci is the one-command tier-1 + race check.
ci: build test race bench-smoke
