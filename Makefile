GO ?= go

.PHONY: build test race bench bench-json loadtest-json bench-smoke ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-json measures serving ns/query at batch 1/16/64 (pipelined drain)
# and writes BENCH_serve.json, so the perf trajectory is tracked across PRs.
bench-json:
	$(GO) run ./cmd/microrec bench -o BENCH_serve.json

# loadtest-json sweeps open-loop offered load through 2.5x saturation and
# writes BENCH_loadtest.json: the knee (max qps meeting the SLA), per-level
# admitted-tail latency, and shed fail-fast times — the overload-behaviour
# trajectory next to bench-json's throughput trajectory.
loadtest-json:
	$(GO) run ./cmd/microrec loadtest -o BENCH_loadtest.json

# bench-smoke runs the datapath/serving benchmarks once each — a fast check
# that the hot paths still execute, used by CI.
bench-smoke:
	$(GO) test -run xxx -bench 'Gather|Serve|EngineInferOne|Pipeline' -benchtime 1x -benchmem .

# ci is the one-command tier-1 + race check.
ci: build test race bench-smoke
