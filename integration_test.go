package microrec_test

import (
	"bytes"
	"math"
	"testing"

	"microrec"
	"microrec/internal/cpu"
	"microrec/internal/embedding"
	"microrec/internal/model"
)

// TestEnginesAgreeOnPredictions is the cross-system consistency check: the
// FPGA engine's float reference path and the real CPU baseline engine must
// produce identical predictions from the same materialised parameters —
// they implement the same model on different "hardware".
func TestEnginesAgreeOnPredictions(t *testing.T) {
	spec := microrec.SmallProductionModel()
	params, err := spec.Materialize(microrec.MaterializeOpts{Seed: 11, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := microrec.NewEngineFromParams(params, microrec.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cpuEng, err := cpu.NewEngine(params)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 23)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Batch(16)
	if err != nil {
		t.Fatal(err)
	}
	cpuPreds, err := cpuEng.InferBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		ref, err := fpga.ReferenceOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(ref-cpuPreds[i])) > 1e-4 {
			t.Errorf("query %d: FPGA reference %v vs CPU %v", i, ref, cpuPreds[i])
		}
		// The fixed-point prediction must track both closely.
		fp, err := fpga.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(fp-ref)) > 0.05 {
			t.Errorf("query %d: fixed-point %v drifted from reference %v", i, fp, ref)
		}
	}
}

// TestCartesianInvisibleToPredictions verifies the central correctness claim
// of the data-structure transform: merging tables changes memory behaviour
// but never the computed CTR.
func TestCartesianInvisibleToPredictions(t *testing.T) {
	spec := microrec.SmallProductionModel()
	params, err := spec.Materialize(microrec.MaterializeOpts{Seed: 3, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	with, err := microrec.NewEngineFromParams(params, microrec.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := microrec.NewEngineFromParams(params, microrec.EngineOptions{DisableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 31)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		q := gen.Next()
		a, err := with.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := without.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: Cartesian engine predicts %v, plain engine %v", i, a, b)
		}
	}
	// But the memory behaviour must differ: fewer accesses, lower latency.
	if with.Plan().Layout.AccessesPerInference() >= without.Plan().Layout.AccessesPerInference() {
		t.Error("Cartesian plan does not reduce accesses")
	}
	if with.LookupNS() >= without.LookupNS() {
		t.Error("Cartesian plan does not reduce lookup latency")
	}
}

// TestEndToEndPaperStory walks the paper's whole argument on the large
// model: CPU latency is milliseconds and embedding-bound; MicroRec's lookup
// is sub-2µs, its end-to-end latency tens of microseconds, and throughput
// beats the CPU's best batch configuration.
func TestEndToEndPaperStory(t *testing.T) {
	cpuModel := cpu.PaperLarge()
	b2048 := cpuModel.EndToEndMS(2048)
	if b2048 < 10 {
		t.Errorf("CPU batch-2048 latency %.1f ms — expected tens of ms", b2048)
	}
	if share := cpuModel.EmbeddingShare(64); share < 0.5 {
		t.Errorf("embedding share %.2f — paper says the embedding layer dominates", share)
	}
	spec := microrec.LargeProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Timing(4000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LookupNS >= 2000 {
		t.Errorf("lookup %.0f ns — paper reports ~1 µs for the large model", rep.LookupNS)
	}
	if rep.LatencyNS >= 40_000 {
		t.Errorf("latency %.1f µs — paper reports tens of µs", rep.LatencyNS/1e3)
	}
	fpgaThroughput := rep.SteadyThroughputItemsPerSec()
	cpuThroughput := cpuModel.ThroughputItemsPerSec(2048)
	speedup := fpgaThroughput / cpuThroughput
	if speedup < 2.5 {
		t.Errorf("steady-state speedup %.2fx below the paper's 2.5x floor", speedup)
	}
}

// TestSerializedParametersProduceSameEngine round-trips parameters through
// the wire format and checks the rebuilt engine predicts identically.
func TestSerializedParametersProduceSameEngine(t *testing.T) {
	spec := microrec.SmallProductionModel()
	params, err := spec.Materialize(microrec.MaterializeOpts{Seed: 5, MaxRowsPerTable: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveParameters(&buf, params); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.LoadParameters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := microrec.NewEngineFromParams(params, microrec.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := microrec.NewEngineFromParams(loaded, microrec.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 41)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q := gen.Next()
		pa, err := a.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.InferOne(embedding.Query(q))
		if err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("query %d: original %v vs deserialized %v", i, pa, pb)
		}
	}
}
