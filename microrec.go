// Package microrec is a Go reproduction of MicroRec (Jiang et al., MLSys
// 2021): a high-performance recommendation-inference engine that combines
// Cartesian-product embedding-table merging with the parallel lookup
// capacity of an HBM-equipped FPGA and a deeply pipelined dataflow design.
//
// The package exposes the system a downstream user needs:
//
//   - model specifications (the paper's two production-scale models, the
//     Facebook DLRM-RMC2 benchmark class, or custom specs),
//   - the placement planner (Algorithm 1: Cartesian-product table
//     combination plus hybrid-memory allocation),
//   - the MicroRec engine: functional fixed-point CTR inference with a
//     calibrated cycle-level timing model of the Alveo U280 design,
//   - a real multi-core CPU baseline engine plus the calibrated analytic
//     model of the paper's TensorFlow-Serving testbed, and
//   - the batched serving subsystem: a dynamic micro-batcher that
//     coalesces concurrent predict requests into hardware-sized batches,
//     drained through a staged pipeline executor whose gather, dense-GEMM
//     and tail stages overlap over a ring of in-flight batch planes — the
//     software analogue of the paper's pipelined dataflow (§4.1) — with a
//     flat engine worker pool as a fallback mode (NewServer), plus
//     overload protection: a bounded submit queue with fast-fail shedding
//     and deadline-aware batch formation (ServerOptions.Shed/SLA),
//   - the sharded serving tier (ServerOptions.Shards): embedding tables
//     partitioned across N gather shards by the placement planner's LPT
//     shard assignment, each micro-batch scattered to the shards and their
//     partial planes merged before the FC stack runs once — bit-identical
//     to single-engine inference, with per-shard hot-row caches, plane
//     rings and straggler-aware merge metrics in /stats, and
//   - the replicated serving tier (NewRouter): N independent server
//     replicas — each a full batching/pipeline composition around its own
//     engine — fronted by a router with pluggable policies (round-robin,
//     least-loaded, hot-key affinity via rendezvous hashing, so N hot-row
//     caches of size C behave like one ~N·C cache), per-replica
//     health/drain, and hot model swap under live traffic, and
//   - the open-loop load harness (RunLoad, SweepLoad): Poisson and
//     trace-driven arrival processes that drive the server past saturation
//     and locate the knee — the highest offered rate meeting the tail SLA.
//
// Quick start:
//
//	spec := microrec.SmallProductionModel()
//	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{})
//	...
//	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 42)
//	queries, err := gen.Batch(64)
//	res, err := eng.Infer(queries)
//	fmt.Println(res.Predictions[0], res.Timing.LatencyNS)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package microrec

import (
	"fmt"
	"io"
	"time"

	"microrec/internal/core"
	"microrec/internal/cpu"
	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
	"microrec/internal/kernels"
	"microrec/internal/loadgen"
	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
	"microrec/internal/obs"
	"microrec/internal/placement"
	"microrec/internal/router"
	"microrec/internal/serving"
	"microrec/internal/tieredstore"
	"microrec/internal/workload"
)

// Re-exported core types. The implementation lives in internal packages; the
// aliases below are the supported public surface.
type (
	// Spec is a recommendation model specification.
	Spec = model.Spec
	// TableSpec describes one embedding table.
	TableSpec = model.TableSpec
	// Parameters holds materialised model parameters.
	Parameters = model.Parameters
	// Query is one inference's sparse input: per-table row indices.
	Query = embedding.Query
	// Engine is the MicroRec accelerator instance.
	Engine = core.Engine
	// InferResult bundles predictions with modeled hardware timing.
	InferResult = core.InferResult
	// TimingReport is the accelerator timing summary.
	TimingReport = core.TimingReport
	// AcceleratorConfig is an accelerator build description.
	AcceleratorConfig = core.Config
	// Resources is an FPGA resource-utilisation estimate.
	Resources = core.Resources
	// PlacementResult is a table-combination + bank-allocation plan.
	PlacementResult = placement.Result
	// CPUEngine is the real multi-goroutine CPU baseline engine.
	CPUEngine = cpu.Engine
	// CPUModel is the calibrated analytic model of the paper's baseline.
	CPUModel = cpu.Model
	// Generator produces deterministic query workloads.
	Generator = workload.Generator
	// MemorySystem describes a set of memory banks.
	MemorySystem = memsim.System
	// Format is a fixed-point number format.
	Format = fixedpoint.Format
	// MaterializeOpts controls parameter materialisation (seed, capacity
	// scaling).
	MaterializeOpts = model.MaterializeOptions
	// BatchScratch holds the reusable buffers of the batched datapath
	// (one per goroutine).
	BatchScratch = core.BatchScratch
	// Server is the batched serving subsystem: a dynamic micro-batcher
	// drained through the staged pipeline executor (or, in fallback mode,
	// an engine worker pool) behind response futures.
	Server = serving.Server
	// ServerOptions configures NewServer. Knobs are grouped into nested
	// sub-structs (Batching, Admission, Pipeline, Tier, Trace, Router); the
	// flat top-level fields (MaxBatch, Window, ...) are deprecated
	// pass-throughs kept for one release — they still work, filling the
	// nested field they moved to, but setting both spellings to different
	// values is a validation error.
	ServerOptions = serving.Options
	// BatchingOptions groups the micro-batcher knobs
	// (ServerOptions.Batching).
	BatchingOptions = serving.BatchingOptions
	// AdmissionOptions groups the overload-protection knobs
	// (ServerOptions.Admission).
	AdmissionOptions = serving.AdmissionOptions
	// PipelineOptions groups the batch-drain knobs (ServerOptions.Pipeline).
	PipelineOptions = serving.PipelineOptions
	// TierOptions groups the scatter/gather sharding knobs
	// (ServerOptions.Tier).
	TierOptions = serving.TierOptions
	// TraceOptions groups the flight-recorder knobs (ServerOptions.Trace).
	TraceOptions = serving.TraceOptions
	// ServerRouterOptions is the per-server replica identity group
	// (ServerOptions.Router); NewRouter stamps it on the servers it builds.
	ServerRouterOptions = serving.RouterOptions
	// ServingEngine is the engine seam the serving subsystem batches over:
	// *Engine implements it, and so does any stage-compatible wrapper
	// (HotEngine). Optional capabilities — tiered storage, prefetch, hot
	// reload — are discovered by interface assertion, not configuration.
	ServingEngine = serving.Engine
	// ServeResult is one served query's prediction plus modeled-vs-wall
	// latency.
	ServeResult = serving.Result
	// ServerStats is a rolling snapshot of serving statistics (latency
	// percentiles, QPS, batch occupancy, pipeline stage occupancy,
	// hot-row cache behaviour).
	ServerStats = serving.Stats
	// PipelineStats is the /stats view of the staged pipeline executor:
	// ring depth, in-flight batches, per-stage occupancy and the measured
	// vs pipesim-predicted steady-state initiation interval.
	PipelineStats = serving.PipelineStats
	// ClusterStats is the /stats view of the sharded serving tier
	// (ServerOptions.Shards > 1): shard partition and per-shard occupancy,
	// the straggler merge-wait histogram and the imbalance ratio.
	ClusterStats = serving.ClusterStats
	// HotCacheInfo is a snapshot of an engine's live hot-row cache
	// (Engine.HotCache).
	HotCacheInfo = core.HotCacheInfo
	// TierStats is the /stats view of the tiered embedding backing store
	// (EngineOptions.ColdTier): per-tier residency, read split,
	// promotion/demotion counters and the current cold-latency bound.
	TierStats = serving.TierStats
	// AdmissionStats is the /stats view of the admission gate: queue
	// pressure, shed/drop counters and the knee (capacity) estimate.
	AdmissionStats = serving.AdmissionStats
	// Router is the replicated serving tier: N independent servers behind
	// one Submit seam, with pluggable routing policies, per-replica
	// health/drain and hot model swap (NewRouter).
	Router = router.Router
	// RouterOptions configures NewRouter (the initial routing policy).
	RouterOptions = router.Options
	// RoutePolicy selects how the router picks a replica per query
	// (RouteRoundRobin, RouteLeastLoaded, RouteAffinity).
	RoutePolicy = router.Policy
	// HotEngine wraps a ServingEngine so its model can be swapped in place
	// under live traffic (NewHotEngine, Router.Reload).
	HotEngine = router.HotEngine
	// RouterStats is the /stats "router" section: active policy, routing
	// decisions/sec per policy, the per-replica scoreboard and the affinity
	// hit-rate lift.
	RouterStats = serving.RouterStats
	// ReplicaStats is one replica's row in RouterStats.PerReplica.
	ReplicaStats = serving.ReplicaStats
	// PolicyDecisionStats is one policy's routing-decision volume in
	// RouterStats.Decisions.
	PolicyDecisionStats = serving.PolicyDecisionStats
	// BuildInfo records the binary's provenance — git revision and
	// cleanliness, Go toolchain, kernel dispatch — as carried in the
	// build_info section of /stats, /metrics and the BENCH JSONs.
	BuildInfo = obs.BuildInfo
	// TraceSpan is one request's flight-recorder record: per-stage
	// nanosecond segments, batch context and the serving verdict
	// (Server.Trace, GET /trace).
	TraceSpan = obs.Span
	// TraceStats is the flight recorder's /stats section: ring size,
	// sampling rate, arrivals seen vs spans recorded.
	TraceStats = obs.Stats
	// TraceEvent is one Chrome trace-event format slice — the wire format
	// shared by GET /trace (live spans) and `microrec trace` (pipesim
	// simulation).
	TraceEvent = obs.TraceEvent
	// Arrivals is an open-loop arrival process (inter-arrival gaps) for
	// the load harness.
	Arrivals = loadgen.Arrivals
	// LoadTarget is the slice of the serving tier the load harness drives:
	// a *Server directly, or a *Router fronting N of them.
	LoadTarget = loadgen.Target
	// LoadOptions configures one open-loop load run (RunLoad).
	LoadOptions = loadgen.Options
	// LoadResult summarises one open-loop run: admitted/shed/expired
	// counts, goodput and latency histograms.
	LoadResult = loadgen.Result
	// LoadSweepOptions configures a load sweep (SweepLoad).
	LoadSweepOptions = loadgen.SweepOptions
	// LoadSweepResult is a full sweep: per-level results plus the knee.
	LoadSweepResult = loadgen.SweepResult
	// LoadPoint is one sweep level's offered rate and result.
	LoadPoint = loadgen.Point
	// LatencyHistogram is a quantile summary recovered from a log-bucketed
	// histogram (p50/p95/p99/p99.9 without storing samples).
	LatencyHistogram = metrics.HistogramSnapshot
)

// DefaultTraceSample is the flight recorder's default head-sampling rate:
// record one request span in every DefaultTraceSample arrivals.
const DefaultTraceSample = serving.DefaultTraceSample

// ErrServerClosed is returned by Server.Submit after Server.Close.
var ErrServerClosed = serving.ErrServerClosed

// ErrInvalidQuery wraps queries rejected by Server.Submit's validation (a
// client fault, as opposed to an engine failure during batch service).
var ErrInvalidQuery = serving.ErrInvalidQuery

// ErrOverloaded is Server.Submit's fast-fail shed response when
// ServerOptions.Shed is set and the bounded submit queue is full (HTTP 429
// with a Retry-After hint on /predict).
var ErrOverloaded = serving.ErrOverloaded

// ErrExpired resolves requests whose serving deadline (ServerOptions.SLA or
// an earlier context deadline) passed before service: dropped at plane-fill
// time without spending gather/GEMM work, or completed too late to matter.
var ErrExpired = serving.ErrExpired

// ErrNoReplicas is Router.Submit's response when the tier has no active
// replicas (all drained or none added).
var ErrNoReplicas = router.ErrNoReplicas

// ErrUnknownReplica reports a Drain/Swap/Reload naming a replica id the
// router does not hold.
var ErrUnknownReplica = router.ErrUnknownReplica

// Routing policies of the replicated serving tier (NewRouter, serve/loadtest
// -route).
const (
	// RouteRoundRobin cycles through active replicas — the oblivious
	// baseline.
	RouteRoundRobin = router.RoundRobin
	// RouteLeastLoaded routes to the replica with the smallest live load
	// score (queue depth + in-flight batch weight).
	RouteLeastLoaded = router.LeastLoaded
	// RouteAffinity routes by a rendezvous hash of the query's embedding
	// keys, so each replica's hot-row cache specializes on a slice of the
	// key space (N caches of size C ≈ one N·C cache).
	RouteAffinity = router.Affinity
)

// Workload distributions.
const (
	// Uniform draws indices uniformly.
	Uniform = workload.Uniform
	// Zipf draws indices with a hot-head popularity skew.
	Zipf = workload.Zipf
)

// Fixed-point precisions of the accelerator datapath.
var (
	// Fixed16 is the 16-bit datapath (Table 2's "FPGA fp16").
	Fixed16 = fixedpoint.Fixed16
	// Fixed32 is the 32-bit datapath.
	Fixed32 = fixedpoint.Fixed32
)

// SmallProductionModel returns the paper's smaller production model
// (47 tables, 352-dim feature, ~1.3 GB; Table 1).
func SmallProductionModel() *Spec { return model.SmallProduction() }

// LargeProductionModel returns the paper's larger production model
// (98 tables, 876-dim feature, ~15.1 GB; Table 1).
func LargeProductionModel() *Spec { return model.LargeProduction() }

// DLRMModel returns a Facebook DLRM-RMC2-class model (§5.4.2): numTables
// small tables, each looked up four times, with the given embedding dim.
func DLRMModel(numTables, dim int) (*Spec, error) { return model.DLRMRMC2(numTables, dim) }

// U280 returns the paper's FPGA memory system: 32 HBM pseudo-channels, 2 DDR4
// channels and the given number of on-chip table banks.
func U280(onChipBanks int) MemorySystem { return memsim.U280(onChipBanks) }

// KernelFeatures reports which optimized datapath kernels this build selected
// at init ("portable" when none): the provenance string bench and loadtest
// reports record so two perf documents can be compared like for like.
func KernelFeatures() string { return kernels.Features() }

// ReadBuildInfo reports this binary's provenance: the git revision it was
// built from (when the module was built inside a checkout), whether the tree
// was dirty, the Go toolchain, and the kernel dispatch string. It is the
// build_info stamped into /stats, /metrics and the BENCH JSON documents so
// every measurement names the code that produced it.
func ReadBuildInfo() BuildInfo { return obs.ReadBuild(kernels.Features()) }

// SpanTraceEvents renders flight-recorder spans (Server.Trace) as Chrome
// trace-event slices: one track per datapath stage, one event group per
// request, timestamps rebased to the earliest span.
func SpanTraceEvents(spans []TraceSpan) []TraceEvent { return obs.SpanEvents(spans) }

// WriteTraceEvents writes trace events as a chrome://tracing / Perfetto
// compatible JSON array — the serializer behind both GET /trace and
// `microrec trace`.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	return obs.WriteTraceEvents(w, events)
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// Precision selects the datapath format; zero value means Fixed16.
	Precision Format
	// DisableCartesian turns off table merging (the paper's "HBM only"
	// configuration).
	DisableCartesian bool
	// Seed drives deterministic parameter materialisation.
	Seed int64
	// MaxRowsPerTable caps materialised embedding rows (capacity
	// scaling); zero means the library default.
	MaxRowsPerTable int64
	// UseLPTAllocator swaps the paper-faithful round-robin DRAM
	// allocation for the cost-balancing LPT strategy.
	UseLPTAllocator bool
	// HotCacheBytes, when positive, attaches a live hot-row cache of the
	// given byte capacity to the engine's gather datapath. The cache never
	// changes predictions; its hit rate scales the modeled embedding-lookup
	// latency (Engine.EffectiveLookupNS, surfaced in /stats).
	HotCacheBytes int64
	// ColdTier attaches the tiered embedding backing store: frequent rows
	// pinned in a DRAM hot tier, the full row set in an mmap'd cold file
	// with a modeled per-access latency, placement driven by a background
	// frequency sweep harvesting the live hot-row cache. Bit-identical to
	// all-DRAM by construction — only the timing model changes. Engines
	// built with a cold tier must be Closed (Engine.Close removes the file).
	ColdTier bool
	// ColdTierPath is the cold-tier file path; empty means an unnamed temp
	// file. Ignored unless ColdTier is set.
	ColdTierPath string
	// ColdLatencyNS overrides the modeled per-access cold-tier latency in
	// nanoseconds; 0 means the default (20µs, NVMe read scale).
	ColdLatencyNS float64
	// HotTierBytes is the DRAM hot-tier byte budget; 0 means a quarter of
	// the model's embedding bytes (the "model 4x larger than DRAM" demo
	// shape), negative means all-cold. Ignored unless ColdTier is set.
	HotTierBytes int64
}

// NewEngine materialises parameters, runs the placement search and builds a
// MicroRec engine in one call.
func NewEngine(spec *Spec, opts EngineOptions) (*Engine, error) {
	params, plan, cfg, err := prepare(spec, opts)
	if err != nil {
		return nil, err
	}
	return core.Build(params, plan, cfg)
}

// NewEngineFromParams builds an engine from existing parameters (e.g. to
// share materialised tables between engines of different precisions).
func NewEngineFromParams(params *Parameters, opts EngineOptions) (*Engine, error) {
	_, plan, cfg, err := prepareWithParams(params, opts)
	if err != nil {
		return nil, err
	}
	return core.Build(params, plan, cfg)
}

func prepare(spec *Spec, opts EngineOptions) (*Parameters, *PlacementResult, AcceleratorConfig, error) {
	params, err := spec.Materialize(model.MaterializeOptions{
		Seed:            opts.Seed,
		MaxRowsPerTable: opts.MaxRowsPerTable,
	})
	if err != nil {
		return nil, nil, AcceleratorConfig{}, err
	}
	return prepareWithParams(params, opts)
}

func prepareWithParams(params *Parameters, opts EngineOptions) (*Parameters, *PlacementResult, AcceleratorConfig, error) {
	prec := opts.Precision
	if prec == (Format{}) {
		prec = Fixed16
	}
	cfg := core.ConfigFor(params.Spec.Name, prec)
	cfg.HotCacheBytes = opts.HotCacheBytes
	if opts.ColdTier {
		cfg.ColdTier = &tieredstore.Config{
			Path:          opts.ColdTierPath,
			ColdLatencyNS: opts.ColdLatencyNS,
			HotBytes:      opts.HotTierBytes,
		}
	}
	alloc := placement.RoundRobin
	if opts.UseLPTAllocator {
		alloc = placement.LPT
	}
	plan, err := placement.Plan(params.Spec, memsim.U280(cfg.OnChipBanks), placement.Options{
		EnableCartesian: !opts.DisableCartesian,
		Allocator:       alloc,
	})
	if err != nil {
		return nil, nil, AcceleratorConfig{}, err
	}
	return params, plan, cfg, nil
}

// PlanModel runs only the placement search (Algorithm 1) and returns the
// resulting plan, for inspection or custom engine assembly.
func PlanModel(spec *Spec, sys MemorySystem, enableCartesian bool) (*PlacementResult, error) {
	return placement.Plan(spec, sys, placement.Options{EnableCartesian: enableCartesian})
}

// NewCPUEngine materialises parameters and builds the real CPU baseline
// engine.
func NewCPUEngine(spec *Spec, seed, maxRows int64) (*CPUEngine, error) {
	params, err := spec.Materialize(model.MaterializeOptions{Seed: seed, MaxRowsPerTable: maxRows})
	if err != nil {
		return nil, err
	}
	return cpu.NewEngine(params)
}

// PaperCPUModel returns the calibrated analytic baseline for one of the
// production models ("production-small" or "production-large").
func PaperCPUModel(modelName string) (CPUModel, error) {
	switch modelName {
	case "production-small":
		return cpu.PaperSmall(), nil
	case "production-large":
		return cpu.PaperLarge(), nil
	default:
		return CPUModel{}, fmt.Errorf("microrec: no calibrated CPU model for %q (use cpu.Calibrated)", modelName)
	}
}

// NewServer starts the batched serving subsystem around an engine: Submit
// coalesces concurrent queries into micro-batches (flush on batch size or
// deadline window), drained by default through the staged pipeline executor
// — gather, dense-GEMM and tail stages overlapped over a ring of
// ServerOptions.PipelineDepth batch planes, bit-identical to the monolithic
// datapath — or by a flat engine worker pool when ServerOptions.WorkerPool
// is set. With ServerOptions.Shards > 1 the server first wraps the engine in
// the sharded scatter/gather tier (tables partitioned across shards, partial
// planes merged before the FC stack; bit-identical by construction). The
// returned server owns background goroutines; callers must Close it.
func NewServer(eng *Engine, opts ServerOptions) (*Server, error) {
	return serving.New(eng, opts)
}

// NewRouter builds an empty replicated serving tier with the given routing
// policy (zero value: round-robin). Replicas are added with Router.Add —
// each a full serving composition around its own engine — and can be
// drained, swapped to a new model, or hot-reloaded under live traffic. The
// router satisfies the same Submit/Stats/Trace/WriteMetrics surface as a
// single Server, so the HTTP mux and the load harness drive either.
func NewRouter(opts RouterOptions) (*Router, error) { return router.New(opts) }

// ParseRoutePolicy resolves a -route flag value to a RoutePolicy.
func ParseRoutePolicy(s string) (RoutePolicy, error) { return router.ParsePolicy(s) }

// RoutePolicies lists the supported routing policies.
func RoutePolicies() []RoutePolicy { return router.Policies() }

// NewHotEngine wraps an engine for in-place model reload: the wrapper is a
// full ServingEngine whose delegate Router.Reload (or any holder of the
// serving.Reloadable capability) can swap under live traffic. The
// replacement must be timing- and geometry-compatible (refreshed
// parameters, not a different architecture).
func NewHotEngine(eng ServingEngine) (*HotEngine, error) { return router.NewHotEngine(eng) }

// NewGenerator builds a deterministic workload generator.
func NewGenerator(spec *Spec, dist workload.Distribution, seed int64) (*Generator, error) {
	return workload.NewGenerator(spec, dist, seed)
}

// NewPoissonArrivals builds a deterministic open-loop Poisson arrival
// process offering `qps` requests per second.
func NewPoissonArrivals(qps float64, seed int64) (Arrivals, error) {
	return loadgen.NewPoisson(qps, seed)
}

// NewTraceArrivals builds an arrival process replaying recorded
// inter-arrival gaps, cycling when exhausted.
func NewTraceArrivals(gaps []time.Duration) (Arrivals, error) {
	return loadgen.NewTrace(gaps)
}

// RunLoad drives one open-loop load run against a server: requests fire on
// the arrival process's schedule regardless of completions (the measurement
// discipline under which overload and tail collapse are actually visible),
// each bounded by the SLA as its context deadline.
func RunLoad(target LoadTarget, queries []Query, arr Arrivals, opts LoadOptions) (LoadResult, error) {
	return loadgen.Run(target, queries, arr, opts)
}

// SweepLoad runs one open-loop run per load level and locates the knee: the
// highest offered rate whose admitted p99 still meets the SLA with losses
// within tolerance. `microrec loadtest` is a CLI wrapper around this.
func SweepLoad(target LoadTarget, queries []Query, opts LoadSweepOptions) (LoadSweepResult, error) {
	return loadgen.Sweep(target, queries, opts)
}
