package microrec_test

import (
	"context"
	"testing"
	"time"

	"microrec"
)

// TestDeprecatedFlatServerOptions pins the one-release compatibility window
// of the options regroup: the flat pre-regroup spelling of every
// ServerOptions knob must keep compiling, keep building a server, and land
// in the nested group it moved to — with the flat mirror still readable
// afterwards, so callers migrating field by field see one coherent value.
func TestDeprecatedFlatServerOptions(t *testing.T) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := microrec.NewServer(eng, microrec.ServerOptions{
		MaxBatch:      16,
		Window:        300 * time.Microsecond,
		Workers:       2,
		QueueDepth:    48,
		StatsWindow:   512,
		PipelineDepth: 4,
		SLA:           50 * time.Millisecond,
		Shed:          true,
		Shards:        1,
		TraceSample:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := srv.Options()
	if got.Batching.MaxBatch != 16 || got.Batching.Window != 300*time.Microsecond || got.Batching.StatsWindow != 512 {
		t.Errorf("flat batching knobs did not land in Batching: %+v", got.Batching)
	}
	if got.Admission.QueueDepth != 48 || !got.Admission.Shed || got.Admission.SLA != 50*time.Millisecond {
		t.Errorf("flat admission knobs did not land in Admission: %+v", got.Admission)
	}
	if got.Pipeline.Depth != 4 || got.Pipeline.Workers != 2 {
		t.Errorf("flat pipeline knobs did not land in Pipeline: %+v", got.Pipeline)
	}
	if got.Tier.Shards != 1 || got.Trace.Sample != 3 {
		t.Errorf("flat tier/trace knobs did not land: tier %+v trace %+v", got.Tier, got.Trace)
	}
	// The deprecated mirror stays readable for the compatibility window.
	if got.MaxBatch != 16 || got.QueueDepth != 48 || got.PipelineDepth != 4 {
		t.Errorf("flat mirror not maintained: MaxBatch=%d QueueDepth=%d PipelineDepth=%d",
			got.MaxBatch, got.QueueDepth, got.PipelineDepth)
	}

	q := make(microrec.Query, len(spec.Tables))
	for i, tb := range spec.Tables {
		q[i] = make([]int64, tb.Lookups)
	}
	if _, err := srv.Submit(context.Background(), q); err != nil {
		t.Fatalf("flat-configured server cannot serve: %v", err)
	}

	// Setting both spellings to different values is a configuration
	// contradiction, not a silent precedence rule.
	if _, err := microrec.NewServer(eng, microrec.ServerOptions{
		MaxBatch: 16,
		Batching: microrec.BatchingOptions{MaxBatch: 32},
	}); err == nil {
		t.Fatal("conflicting flat and nested MaxBatch accepted")
	}
}
