// Planner exploration: run Algorithm 1 on a custom model, compare it with
// brute force, and show how the Cartesian-candidate count n trades storage
// for lookup latency.
//
// Run with: go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
	"microrec/internal/placement"
)

func main() {
	// A custom model: eight tables on a small device with four DRAM
	// channels and two 64 KB on-chip banks. Without merging, six tables
	// land in DRAM (two per channel somewhere -> two access rounds);
	// merging two pairs of tiny tables gets DRAM down to four tables and
	// a single round.
	tables := []model.TableSpec{
		{ID: 0, Name: "hour", Rows: 24, Dim: 4, Lookups: 1},
		{ID: 1, Name: "country", Rows: 200, Dim: 4, Lookups: 1},
		{ID: 2, Name: "lang", Rows: 300, Dim: 4, Lookups: 1},
		{ID: 3, Name: "device", Rows: 800, Dim: 4, Lookups: 1},
		{ID: 4, Name: "slot", Rows: 1200, Dim: 4, Lookups: 1},
		{ID: 5, Name: "adgroup", Rows: 2000, Dim: 4, Lookups: 1},
		{ID: 6, Name: "item", Rows: 400000, Dim: 16, Lookups: 1},
		{ID: 7, Name: "user", Rows: 2000000, Dim: 32, Lookups: 1},
	}
	spec := &model.Spec{Name: "custom-8", Tables: tables, Hidden: []int{256, 128, 64}}
	sys := memsim.System{Banks: []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 28, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 28, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 28, Timing: memsim.HBMTiming},
		{Kind: memsim.DDR, Capacity: 1 << 30, Timing: memsim.DDRTiming},
		{Kind: memsim.OnChip, Capacity: 64 << 10, Timing: memsim.OnChipTiming},
		{Kind: memsim.OnChip, Capacity: 64 << 10, Timing: memsim.OnChipTiming},
	}}

	fmt.Println("== Heuristic (Algorithm 1) vs brute force ==")
	h, err := placement.Plan(spec, sys, placement.Options{EnableCartesian: true, Allocator: placement.LPT})
	if err != nil {
		log.Fatal(err)
	}
	b, err := placement.BruteForce(spec, sys,
		placement.Options{EnableCartesian: true, Allocator: placement.LPT},
		placement.BruteForceLimits{MaxTables: 8, MaxExhaustiveTables: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heuristic:   %.0f ns lookup, %d products, storage %s\n",
		h.Report.LatencyNS, h.Layout.NumMerged(), metrics.FmtBytes(h.StorageBytes()))
	fmt.Printf("brute force: %.0f ns lookup, %d products, storage %s\n\n",
		b.Report.LatencyNS, b.Layout.NumMerged(), metrics.FmtBytes(b.StorageBytes()))

	fmt.Println("== Sweep: Cartesian candidate count n ==")
	t := metrics.NewTable("", "n (candidates)", "physical tables", "DRAM rounds", "lookup (ns)", "storage overhead")
	for n := 0; n <= 6; n += 2 {
		res, err := placement.Plan(spec, sys, placement.Options{
			EnableCartesian: n > 0,
			MaxCandidates:   n,
			Allocator:       placement.LPT,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprint(n),
			fmt.Sprint(len(res.Layout.Tables)),
			fmt.Sprint(res.Report.MaxOffChipRounds),
			metrics.FmtF(res.Report.LatencyNS, 0),
			metrics.FmtPct(res.Layout.OverheadFraction()))
	}
	fmt.Print(t.String())

	fmt.Println("\n== Chosen plan in detail ==")
	d := metrics.NewTable("", "physical table", "rows", "dim", "bytes", "bank")
	for ti, pt := range h.Layout.Tables {
		d.AddRow(pt.Name(), fmt.Sprint(pt.Rows()), fmt.Sprint(pt.Dim()),
			metrics.FmtBytes(pt.Bytes()),
			fmt.Sprintf("%d (%v)", h.BankOf[ti], sys.Banks[h.BankOf[ti]].Kind))
	}
	fmt.Print(d.String())

	// Show what one merged access actually retrieves.
	for _, pt := range h.Layout.Tables {
		if !pt.IsProduct() {
			continue
		}
		idx := make([]int64, len(pt.Sources))
		for i := range idx {
			idx[i] = int64(i + 1)
		}
		row, err := pt.Index(idx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nproduct %q: sources %d, one access at row %d retrieves %d vectors (%d floats)\n",
			pt.Name(), len(pt.Sources), row, len(pt.Sources), pt.Dim())
		break
	}
}
