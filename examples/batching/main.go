// Batching: the serving-side story behind the paper's latency argument
// (§2.3). A CPU engine must form large batches to reach throughput, but the
// SLA caps the feasible batch; a batching queue shows how offered load turns
// into tail latency. MicroRec's item-at-a-time pipeline removes the
// trade-off.
//
// Run with: go run ./examples/batching
package main

import (
	"fmt"
	"log"

	"microrec/internal/experiments"
)

func main() {
	r, err := experiments.Find("sla")
	if err != nil {
		log.Fatal(err)
	}
	tables, err := r.Run(experiments.Options{Items: 5000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	fmt.Println("Takeaway: every CPU operating point pays milliseconds; the accelerator's")
	fmt.Println("pipeline serves each query in tens of microseconds with no batch to wait for.")
}
