// DLRM study: run the Facebook recommendation-benchmark comparison (Table 5)
// and demonstrate inference on a DLRM-RMC2-class model, whose tables are each
// looked up four times per inference.
//
// Run with: go run ./examples/dlrm
package main

import (
	"fmt"
	"log"

	"microrec"
	"microrec/internal/experiments"
)

func main() {
	// Part 1: the Table 5 sweep — lookup latency and speedup vs the
	// published Facebook baseline across table counts and embedding dims.
	r, err := experiments.Find("table5")
	if err != nil {
		log.Fatal(err)
	}
	tables, err := r.Run(experiments.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}

	// Part 2: functional inference on one DLRM-RMC2 instance. Each of the
	// 8 tables is looked up 4 times (32 lookups per inference).
	spec, err := microrec.DLRMModel(8, 32)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 99)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := gen.Batch(8)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Infer(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DLRM-RMC2 (8 tables x 4 lookups, dim 32):\n")
	for i, ctr := range res.Predictions {
		fmt.Printf("  query %d: CTR %.4f\n", i, ctr)
	}
	fmt.Printf("  lookup latency: %.0f ns, single-item latency %.1f µs\n",
		res.Timing.LookupNS, res.Timing.LatencyNS/1e3)
}
