// Quickstart: build a MicroRec engine for the small production model, run a
// handful of CTR predictions, and print the modeled hardware timing.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"microrec"
)

func main() {
	// The paper's smaller production model: 47 embedding tables, a
	// 352-dimensional concatenated feature, and a (1024, 512, 256) MLP.
	spec := microrec.SmallProductionModel()

	// NewEngine materialises deterministic parameters, runs the
	// table-combination + allocation search (Algorithm 1) against the
	// U280's hybrid memory system, and builds the fixed-point engine.
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Deterministic synthetic traffic: Zipf-skewed sparse indices, the
	// realistic case for production embedding workloads.
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 2024)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := gen.Batch(16)
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Infer(queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, ctr := range res.Predictions {
		fmt.Printf("user query %2d -> predicted CTR %.4f\n", i, ctr)
	}

	t := res.Timing
	fmt.Println()
	fmt.Printf("model:               %s (%d tables, feature len %d)\n",
		spec.Name, len(spec.Tables), spec.FeatureLen())
	fmt.Printf("embedding lookup:    %.0f ns  (Cartesian products + 34 DRAM channels)\n", t.LookupNS)
	fmt.Printf("single-item latency: %.1f µs  (paper: 16.3 µs)\n", t.LatencyNS/1e3)
	fmt.Printf("steady throughput:   %.3g items/s  (paper: 3.05e5)\n", t.SteadyThroughputItemsPerSec())
	fmt.Printf("bottleneck stage:    %s\n", t.BottleneckStage)
}
