// Serving: an online CTR-prediction service in front of the MicroRec engine,
// plus a self-test client that drives it — the "real-time recommendation"
// deployment the paper's latency argument targets (§1, §4.1).
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"microrec"
)

type predictRequest struct {
	Indices [][]int64 `json:"indices"`
}

type predictResponse struct {
	CTR              float64 `json:"ctr"`
	ModeledLatencyUS float64 `json:"modeled_latency_us"`
}

func main() {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 1024})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := make(microrec.Query, len(req.Indices))
		for i := range req.Indices {
			q[i] = req.Indices[i]
		}
		ctr, err := eng.InferOne(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rep, err := eng.Timing(1)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(predictResponse{
			CTR:              float64(ctr),
			ModeledLatencyUS: rep.LatencyNS / 1e3,
		}); err != nil {
			log.Print(err)
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %s at %s\n\n", spec.Name, base)

	// Self-test client: fire a few requests and report wall-clock RTT
	// alongside the modeled accelerator latency.
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 7)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 5; i++ {
		q := gen.Next()
		body, err := json.Marshal(predictRequest{Indices: q})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		resp, err := client.Post(base+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var pr predictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			log.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d: CTR %.4f  (HTTP round trip %v, modeled FPGA latency %.1f µs)\n",
			i, pr.CTR, time.Since(start).Round(time.Microsecond), pr.ModeledLatencyUS)
	}
	fmt.Println("\nthe modeled accelerator latency is microseconds — the paper's point is that")
	fmt.Println("item-at-a-time FPGA inference removes batching from the serving tail entirely.")
	if err := srv.Close(); err != nil {
		log.Print(err)
	}
}
