// Serving: the batched online CTR-prediction subsystem in front of the
// MicroRec engine — the production serving pattern the paper's latency
// argument targets (§1, §2.3, §4.1). Concurrent clients submit queries; the
// server coalesces them into dynamic micro-batches (flush on batch size or
// deadline window) served by an engine worker pool, so each FC weight matrix
// streams from memory once per batch instead of once per query.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"microrec"
)

func main() {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 1024})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 7)
	if err != nil {
		log.Fatal(err)
	}
	const clients = 96
	queries := make([]microrec.Query, clients)
	for i := range queries {
		queries[i] = gen.Next()
	}

	// Baseline: the per-query serving pattern (one synchronous inference
	// per request, TensorFlow-Serving style).
	start := time.Now()
	for _, q := range queries {
		if _, err := eng.InferOne(q); err != nil {
			log.Fatal(err)
		}
	}
	perQuery := time.Since(start)

	// Batched serving: concurrent clients behind the micro-batcher. One
	// worker keeps the comparison honest — the speedup below comes from
	// batching (weight-streaming amortisation), not from running the
	// engine on more cores than the baseline.
	srv, err := microrec.NewServer(eng, microrec.ServerOptions{
		MaxBatch: 32,
		Window:   200 * time.Microsecond,
		Workers:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// The window is validated against a serving latency budget before
	// traffic arrives (internal/sla's worst-case bound).
	if err := srv.ValidateSLA(100 * time.Millisecond); err != nil {
		log.Fatal(err)
	}

	start = time.Now()
	var wg sync.WaitGroup
	results := make([]microrec.ServeResult, clients)
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := srv.Submit(context.Background(), queries[i])
			if err != nil {
				log.Fatal(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	batched := time.Since(start)

	fmt.Printf("serving %s to %d concurrent clients\n\n", spec.Name, clients)
	for i := 0; i < 3; i++ {
		r := results[i]
		fmt.Printf("client %d: CTR %.4f  (batch of %d, served in %v, modeled FPGA latency %.1f µs)\n",
			i, r.CTR, r.BatchSize, r.WallTime.Round(time.Microsecond), r.ModeledLatencyUS)
	}
	st := srv.Stats()
	fmt.Printf("\n/stats: %d queries in %d batches — mean batch %.1f (occupancy %.0f%%), p99 latency %.0f µs, %.0f qps\n",
		st.Queries, st.Batches, st.MeanBatch, 100*st.BatchOccupancy, st.LatencyUS.P99, st.QPS)
	fmt.Printf("\nper-query serving: %v for %d queries\nbatched serving:   %v (%.1fx)\n",
		perQuery.Round(time.Millisecond), clients, batched.Round(time.Millisecond),
		float64(perQuery)/float64(batched))
	fmt.Println("\nbatching amortises FC weight streaming across the micro-batch — the CPU-side")
	fmt.Println("analogue of the pipelined, item-at-a-time dataflow the paper builds in hardware.")
}
