// Overload: admission control and load shedding under open-loop traffic —
// the serving-side defense of the paper's tail-latency claim. A recommender
// fleet is strictly SLA-bound (answers arriving after the page renders are
// worthless), and arrival rates routinely burst past steady-state capacity;
// without admission control the submit queue grows unboundedly and *every*
// request's latency collapses. With a bounded queue, fast-fail shedding and
// deadline-aware batch formation, the server keeps the tail of admitted
// requests inside the SLA and converts the excess into cheap, explicit
// rejections.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"
	"log"
	"time"

	"microrec"
)

func main() {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 1024})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 7)
	if err != nil {
		log.Fatal(err)
	}
	queries := make([]microrec.Query, 256)
	for i := range queries {
		queries[i] = gen.Next()
	}

	// Production SLAs sit at tens of ms; a generous budget keeps the demo
	// meaningful on slow or single-core hosts too.
	const sla = 100 * time.Millisecond
	srv, err := microrec.NewServer(eng, microrec.ServerOptions{
		MaxBatch:   32,
		Window:     200 * time.Microsecond,
		QueueDepth: 64,   // two batches of backlog: bounds queueing delay
		Shed:       true, // queue full -> ErrOverloaded instead of blocking
		SLA:        sla,  // stale queued requests are dropped, not computed
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Find the server's capacity by driving it far past saturation: a
	// shedding server's goodput under overload approximates its knee.
	arr, err := microrec.NewPoissonArrivals(1e6, 3)
	if err != nil {
		log.Fatal(err)
	}
	calib, err := microrec.RunLoad(srv, queries, arr, microrec.LoadOptions{Requests: 800, SLA: sla})
	if err != nil {
		log.Fatal(err)
	}
	capacity := calib.AdmittedQPS
	if capacity <= 0 {
		log.Fatalf("calibration admitted nothing (host too slow for the %v SLA): %+v", sla, calib)
	}
	fmt.Printf("saturation goodput ~%.0f qps (admitted %d of %d offered)\n\n", capacity, calib.Admitted, calib.Offered)

	// Now hold the server at 2x its capacity, open-loop: arrivals keep
	// coming whether or not earlier requests finished.
	over, err := microrec.NewPoissonArrivals(2*capacity, 11)
	if err != nil {
		log.Fatal(err)
	}
	res, err := microrec.RunLoad(srv, queries, over, microrec.LoadOptions{Requests: 1500, SLA: sla})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2x overload (%.0f qps offered for %.1fs):\n", res.OfferedQPS, res.Duration.Seconds())
	fmt.Printf("  admitted %d (goodput %.0f qps)  shed %d  expired %d\n",
		res.Admitted, res.AdmittedQPS, res.Shed, res.Expired)
	fmt.Printf("  admitted latency: p50 %.1f ms  p99 %.1f ms  (SLA %v)\n",
		res.AdmittedLatencyUS.P50/1e3, res.AdmittedLatencyUS.P99/1e3, sla)
	fmt.Printf("  shed fail-fast:   p99 %.2f ms\n", res.ShedLatencyUS.P99/1e3)

	st := srv.Stats()
	fmt.Printf("\n/stats admission: queue %d/%d, shed %d, deadline drops %d, late %d, knee ~%.0f qps\n",
		st.Admission.QueueDepth, st.Admission.QueueCapacity, st.Admission.Shed,
		st.Admission.DeadlineDrops, st.Admission.LateCompletions, st.Admission.KneeQPS)

	fmt.Println("\nthe bounded queue caps how stale an admitted request can get, shedding turns")
	fmt.Println("the overflow into sub-millisecond rejections (HTTP 429 + Retry-After on the")
	fmt.Println("serve endpoint), and deadline-aware batch formation refuses to spend gather")
	fmt.Println("and GEMM cycles on answers nobody is waiting for.")
}
