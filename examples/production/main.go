// Production study: reproduce the paper's headline evaluation on the two
// Alibaba-scale models — end-to-end speedups over the CPU baseline (Table 2),
// the Cartesian-product benefit (Table 3) and embedding-layer speedups
// (Table 4).
//
// Run with: go run ./examples/production
package main

import (
	"fmt"
	"log"

	"microrec/internal/experiments"
)

func main() {
	opts := experiments.Options{Items: 10000, Seed: 1}
	for _, name := range []string{"models", "fig3", "table2", "table3", "table4"} {
		r, err := experiments.Find(name)
		if err != nil {
			log.Fatal(err)
		}
		tables, err := r.Run(opts)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	fmt.Println("Headline check: MicroRec should reach 2.5-5.4x end-to-end and")
	fmt.Println("13.8-14.7x embedding-layer speedup at the CPU's best batch size (2048).")
}
