//go:build !noasm

package microrec_test

import (
	"microrec/internal/fixedpoint"
	"microrec/internal/kernels"
)

// The batched quantize only exists off the noasm leg; under !noasm the
// kernels.QuantizeRow dispatch variable is quantizeRowBatch, so driving the
// dispatch pins the batched kernel itself.
func init() {
	src := make([]float32, 48)
	dst := make([]int64, 48)
	for i := range src {
		src[i] = float32(i)/16 - 1
	}
	zeroallocArch = append(zeroallocArch, allocCase{
		name:   "kernels/batched-quantize",
		covers: []string{"internal/kernels.quantizeRowBatch"},
		run:    func() { kernels.QuantizeRow(fixedpoint.Fixed16, src, dst) },
	})
}
