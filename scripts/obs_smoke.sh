#!/bin/sh
# obs_smoke.sh — observability end-to-end check (CI's "Observability smoke"
# step; run locally via `make obs-smoke`).
#
# Starts a real `microrec serve` with per-request tracing and pprof enabled,
# drives live traffic at it with `microrec smoke` (which validates the
# /metrics Prometheus exposition and the /trace trace-event JSON), then curls
# the telemetry endpoints directly so a transport-level regression (content
# type, status code, pprof mounting) also fails the build.
set -eu

PORT="${PORT:-18080}"
ADDR="http://127.0.0.1:$PORT"
GO="${GO:-go}"
BIN="${TMPDIR:-/tmp}/microrec-obs-smoke"

"$GO" build -o "$BIN" ./cmd/microrec

"$BIN" serve -addr "127.0.0.1:$PORT" -batch 8 -trace-sample 1 -pprof &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

# Drive traffic and validate both telemetry endpoints (waits for /healthz).
"$BIN" smoke -addr "$ADDR" -n 64

# Transport-level checks: status codes, content type, pprof gate.
curl -fsS "$ADDR/metrics" -o /tmp/obs-smoke-metrics.txt \
    -w '%{content_type}\n' | grep -q '^text/plain; version=0.0.4'
grep -q '^microrec_build_info{' /tmp/obs-smoke-metrics.txt
curl -fsS "$ADDR/trace?last=16" -o /tmp/obs-smoke-trace.json
head -c 1 /tmp/obs-smoke-trace.json | grep -q '\['
curl -fsS "$ADDR/debug/pprof/cmdline" >/dev/null

echo "obs smoke ok: /metrics, /trace and /debug/pprof/ all answer on $ADDR"
