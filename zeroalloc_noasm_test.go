//go:build noasm

package microrec_test

// Under -tags noasm the optimized kernel files drop out of the build; tell
// the annotation parser so its expected set drops them too.
func init() {
	parseTags = []string{"noasm"}
}
