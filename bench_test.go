// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each BenchmarkTableN / BenchmarkFigureN runs the corresponding experiment
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports (see EXPERIMENTS.md for the
// recorded paper-vs-measured comparison). Wall-clock benchmarks of the real
// engines follow at the bottom.
package microrec_test

import (
	"context"
	"testing"
	"time"

	"microrec"
	"microrec/internal/experiments"
)

var sinkTables interface{}

// benchExperiment runs one experiment repeatedly and keeps the result alive.
func benchExperiment(b *testing.B, name string, items int) {
	b.Helper()
	r, err := experiments.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Items: items, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := r.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		sinkTables = tables
	}
}

// BenchmarkFigure3 regenerates Figure 3 (embedding-layer share of CPU
// inference latency).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3", 1000) }

// BenchmarkTable2 regenerates Table 2 (end-to-end inference, CPU vs MicroRec)
// and reports the small-model fp16 headline numbers as custom metrics.
func BenchmarkTable2(b *testing.B) {
	sum, err := experiments.Table2Summary(experiments.Options{Items: 4000})
	if err != nil {
		b.Fatal(err)
	}
	small := sum["production-small"][16]
	b.ReportMetric(small.FPGAItemsPerS, "items/s")
	b.ReportMetric(small.FPGALatencyUS, "µs/item")
	b.ReportMetric(small.Speedup[2048], "speedup@B2048")
	benchExperiment(b, "table2", 2000)
}

// BenchmarkTable3 regenerates Table 3 (Cartesian benefit/overhead).
func BenchmarkTable3(b *testing.B) {
	rows, err := experiments.Table3Rows(experiments.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		if r.Model == "production-small" && r.Cartesian {
			b.ReportMetric(r.LatencyPct, "latency%small")
			b.ReportMetric(r.StoragePct, "storage%small")
		}
	}
	benchExperiment(b, "table3", 1000)
}

// BenchmarkTable4 regenerates Table 4 (embedding-layer lookup performance)
// and reports the headline 13.8x-class speedup.
func BenchmarkTable4(b *testing.B) {
	res, err := experiments.Table4Results(experiments.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res {
		if r.Model == "production-small" {
			b.ReportMetric(r.Speedup["hbm+cartesian"][2048], "speedup@B2048")
			b.ReportMetric(r.CartesianNS, "lookup-ns")
		}
	}
	benchExperiment(b, "table4", 1000)
}

// BenchmarkTable5 regenerates Table 5 (Facebook DLRM-RMC2 lookup speedups).
func BenchmarkTable5(b *testing.B) {
	cells, err := experiments.Table5Cells(experiments.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cells[0].Speedup, "best-speedup")
	b.ReportMetric(cells[len(cells)-1].Speedup, "worst-speedup")
	benchExperiment(b, "table5", 1000)
}

// BenchmarkFigure7 regenerates Figure 7 (throughput vs lookup rounds).
func BenchmarkFigure7(b *testing.B) {
	points, err := experiments.Figure7Series(experiments.Options{Items: 2000}, 8)
	if err != nil {
		b.Fatal(err)
	}
	bp := experiments.Figure7Breakpoint(points)
	b.ReportMetric(float64(bp["production-small"]), "rounds-small")
	b.ReportMetric(float64(bp["production-large"]), "rounds-large")
	benchExperiment(b, "fig7", 2000)
}

// BenchmarkTable6 regenerates Table 6 (FPGA resource utilisation).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6", 1000) }

// BenchmarkAppendixAXI regenerates the appendix AXI-width trade-off.
func BenchmarkAppendixAXI(b *testing.B) { benchExperiment(b, "axi", 1000) }

// BenchmarkAppendixCost regenerates the appendix cost comparison.
func BenchmarkAppendixCost(b *testing.B) { benchExperiment(b, "cost", 1000) }

// BenchmarkAblationAllocator regenerates ablation A1 (allocation strategies,
// heuristic optimality).
func BenchmarkAblationAllocator(b *testing.B) { benchExperiment(b, "allocator", 1000) }

// BenchmarkAblationQuant regenerates ablation A2 (fixed-point error).
func BenchmarkAblationQuant(b *testing.B) { benchExperiment(b, "quant", 1000) }

// ---- Wall-clock benchmarks of the real engines ----

// BenchmarkEngineInferOne measures the functional fixed-point datapath on
// one query of the small production model.
func BenchmarkEngineInferOne(b *testing.B) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 256})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := gen.Next()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.InferOne(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUEngineBatch measures the real CPU baseline at the paper's
// favoured batch size geometry (batch 256 keeps the benchmark fast while
// exercising the same code path as 2048).
func BenchmarkCPUEngineBatch(b *testing.B) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewCPUEngine(spec, 1, 256)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 1)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := gen.Batch(256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds, err := eng.InferBatch(qs)
		if err != nil {
			b.Fatal(err)
		}
		if len(preds) != 256 {
			b.Fatal("short batch")
		}
	}
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "items/s")
}

// BenchmarkPlannerSmall measures Algorithm 1 on the 47-table model.
func BenchmarkPlannerSmall(b *testing.B) {
	spec := microrec.SmallProductionModel()
	sys := microrec.U280(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microrec.PlanModel(spec, sys, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerLarge measures Algorithm 1 on the 98-table model.
func BenchmarkPlannerLarge(b *testing.B) {
	spec := microrec.LargeProductionModel()
	sys := microrec.U280(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microrec.PlanModel(spec, sys, true); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Gather benchmarks: per-query scalar vs batched channel-sharded ----

// BenchmarkGatherOne measures the per-query float gather (one query's
// physical-table walk into the concatenated feature vector).
func BenchmarkGatherOne(b *testing.B) {
	eng, qs := serveBenchSetup(b)
	dst := make([]float32, eng.Spec().FeatureLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Gather(qs[i%len(qs)], dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatherBatch measures the batched gather datapath at batch 64:
// table-major over the whole batch, sharded by the placement plan's channel
// groups, quantizing directly into the fixed-point feature plane. One op is
// a 64-query batch; the gather loop itself is allocation-free (the handful
// of reported allocations are the per-batch shard goroutines, <0.2/query).
func BenchmarkGatherBatch(b *testing.B) {
	eng, qs := serveBenchSetup(b)
	batch := qs[:64]
	var scratch microrec.BatchScratch
	if _, _, err := eng.GatherBatch(batch, &scratch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.GatherBatch(batch, &scratch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(64*b.N)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(64*b.N), "ns/query")
}

// ---- Serving benchmarks: batched vs per-query /predict paths ----

// serveBenchSetup builds the small-model engine and a deterministic query
// pool shared by the serving benchmarks.
func serveBenchSetup(b *testing.B) (*microrec.Engine, []microrec.Query) {
	b.Helper()
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 256})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 11)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]microrec.Query, 512)
	for i := range qs {
		qs[i] = gen.Next()
	}
	return eng, qs
}

// BenchmarkServeUnbatched measures the seed's per-query serving pattern —
// one synchronous InferOne plus a single-item timing report per request, the
// TensorFlow-Serving-style baseline the paper criticises. Reports ns/query
// (ns/op) and queries/s.
func BenchmarkServeUnbatched(b *testing.B) {
	eng, qs := serveBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.InferOne(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Timing(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServeBatched measures the micro-batching server under concurrent
// submitters at batch 64 on the flat worker-pool drain — the PR 2 baseline
// the pipelined drain is compared against. Weight blocks stream from memory
// once per batch instead of once per query, and the timing model runs once
// per batch. A single worker keeps the pair an apples-to-apples batching
// comparison (the unbatched baseline is one synchronous request stream, so
// extra workers would conflate parallelism with batching). Reports ns/query
// (ns/op) and queries/s.
func BenchmarkServeBatched(b *testing.B) {
	benchServeDrain(b, microrec.ServerOptions{
		MaxBatch:   64,
		Window:     200 * time.Microsecond,
		Workers:    1,
		WorkerPool: true,
	})
}

// BenchmarkServePipelined measures the staged pipeline drain at batch 64:
// the micro-batcher feeds a ring of batch planes whose gather, dense-GEMM
// and tail stages run on separate goroutines, so batch i+1's channel-
// parallel gather overlaps batch i's GEMM. Besides ns/query (ns/op) and
// queries/s it reports the executor's measured steady-state batch interval
// next to pipesim's prediction for the same measured stage times and the
// serial (un-overlapped) sum — interval-us below serial-us is the gather/
// GEMM overlap at work (on multi-core hosts; a single-core runner
// interleaves rather than overlaps the stages).
func BenchmarkServePipelined(b *testing.B) {
	benchServeDrain(b, microrec.ServerOptions{
		MaxBatch:      64,
		Window:        200 * time.Microsecond,
		PipelineDepth: 3,
	})
}

// benchServeDrain is the shared harness of the two drain benchmarks.
func benchServeDrain(b *testing.B, opts microrec.ServerOptions) {
	eng, qs := serveBenchSetup(b)
	srv, err := microrec.NewServer(eng, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	b.SetParallelism(128) // concurrent submitters feeding the batcher
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := srv.Submit(ctx, qs[i%len(qs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	st := srv.Stats()
	b.ReportMetric(st.MeanBatch, "mean-batch")
	if st.Pipeline != nil {
		b.ReportMetric(st.Pipeline.MeasuredIntervalUS, "interval-us")
		b.ReportMetric(st.Pipeline.PredictedIntervalUS, "sim-interval-us")
		b.ReportMetric(st.Pipeline.SerialIntervalUS, "serial-us")
	}
}
