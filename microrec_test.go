package microrec_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"microrec"
)

func TestQuickstartFlow(t *testing.T) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 42)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Batch(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Infer(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 8 {
		t.Fatalf("predictions = %d", len(res.Predictions))
	}
	for _, p := range res.Predictions {
		if p < 0 || p > 1 {
			t.Errorf("CTR %v outside [0,1]", p)
		}
	}
	if res.Timing.LatencyNS <= 0 || res.Timing.ThroughputItemsPerSec <= 0 {
		t.Errorf("timing report degenerate: %+v", res.Timing)
	}
}

func TestEngineOptionsPrecision(t *testing.T) {
	spec := microrec.SmallProductionModel()
	e16, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	e32, err := microrec.NewEngine(spec, microrec.EngineOptions{
		Seed: 1, MaxRowsPerTable: 64, Precision: microrec.Fixed32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e16.Config().Precision.Bits != 16 || e32.Config().Precision.Bits != 32 {
		t.Error("precision option not honored")
	}
	// fp32 runs at a different clock per Table 6.
	if e16.Config().ClockMHz == e32.Config().ClockMHz {
		t.Error("fp16/fp32 clocks should differ (Table 6)")
	}
}

func TestDisableCartesian(t *testing.T) {
	spec := microrec.SmallProductionModel()
	with, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	without, err := microrec.NewEngine(spec, microrec.EngineOptions{
		Seed: 1, MaxRowsPerTable: 64, DisableCartesian: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if with.LookupNS() >= without.LookupNS() {
		t.Errorf("Cartesian lookup %.0f ns >= plain %.0f ns", with.LookupNS(), without.LookupNS())
	}
}

func TestCPUEngineAndModel(t *testing.T) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewCPUEngine(spec, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Batch(4)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := eng.InferBatch(qs)
	if err != nil || len(preds) != 4 {
		t.Fatalf("CPU batch: %v, %d preds", err, len(preds))
	}
	m, err := microrec.PaperCPUModel("production-small")
	if err != nil {
		t.Fatal(err)
	}
	if m.EndToEndMS(2048) <= m.EndToEndMS(1) {
		t.Error("CPU model latency not increasing with batch")
	}
	if _, err := microrec.PaperCPUModel("nope"); err == nil {
		t.Error("unknown model name: want error")
	}
}

func TestPlanModel(t *testing.T) {
	spec := microrec.SmallProductionModel()
	plan, err := microrec.PlanModel(spec, microrec.U280(8), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Layout.Tables) != 42 {
		t.Errorf("plan has %d physical tables, want 42 (Table 3)", len(plan.Layout.Tables))
	}
}

func TestNewEngineFromParamsSharesTables(t *testing.T) {
	spec := microrec.SmallProductionModel()
	params, err := spec.Materialize(microrec.MaterializeOpts{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	e16, err := microrec.NewEngineFromParams(params, microrec.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e32, err := microrec.NewEngineFromParams(params, microrec.EngineOptions{Precision: microrec.Fixed32})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Uniform, 9)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Next()
	a, err := e16.ReferenceOne(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e32.ReferenceOne(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("shared-parameter engines disagree on the float reference: %v vs %v", a, b)
	}
}

// TestServerPublicSurface drives the batched serving subsystem through the
// public API: concurrent Submits coalesce into micro-batches whose
// predictions match the engine exactly, stats populate, and Close drains.
func TestServerPublicSurface(t *testing.T) {
	spec := microrec.SmallProductionModel()
	eng, err := microrec.NewEngine(spec, microrec.EngineOptions{Seed: 1, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := microrec.NewServer(eng, microrec.ServerOptions{
		MaxBatch: 8,
		Window:   300 * time.Microsecond,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := microrec.NewGenerator(spec, microrec.Zipf, 13)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	queries := make([]microrec.Query, n)
	for i := range queries {
		queries[i] = gen.Next()
	}
	var wg sync.WaitGroup
	results := make([]microrec.ServeResult, n)
	errs := make([]error, n)
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = srv.Submit(context.Background(), queries[i])
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		want, err := eng.InferOne(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if results[i].CTR != want {
			t.Errorf("query %d: served CTR %v, engine %v", i, results[i].CTR, want)
		}
		if results[i].BatchSize < 1 || results[i].BatchSize > 8 {
			t.Errorf("query %d: batch size %d", i, results[i].BatchSize)
		}
	}
	st := srv.Stats()
	if st.Queries != n || st.LatencyUS.P99 <= 0 || st.BatchOccupancy <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := srv.ValidateSLA(time.Second); err != nil {
		t.Errorf("ValidateSLA: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), queries[0]); err != microrec.ErrServerClosed {
		t.Errorf("submit after close = %v, want ErrServerClosed", err)
	}
}
