module microrec

go 1.22
