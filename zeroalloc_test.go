package microrec_test

// This file is the single home of the datapath's zero-allocation pins. Every
// function annotated //microrec:noalloc in the tree appears in exactly one
// row's covers list below, and two tests enforce the contract from both
// sides:
//
//   - TestNoallocAnnotationTableComplete parses the source tree (under the
//     same build tags the test itself was compiled with) and diffs the
//     annotated-function set against the union of the covers lists. Adding
//     an annotation without extending the table fails, and so does stripping
//     an annotation the table still claims — the static hotalloc analyzer
//     and this dynamic table can never silently drift apart.
//
//   - TestNoallocFunctionsAllocationFree drives every row's runner under
//     testing.AllocsPerRun and requires exactly zero allocations per run.
//
// Rows for build-gated kernels live in sibling files with matching
// constraints (zeroalloc_asm_test.go, zeroalloc_amd64_test.go), so the table
// reshapes itself with the build exactly as the source set does.

import (
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
	"microrec/internal/kernels"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/obs"
	"microrec/internal/pipeline"
	"microrec/internal/placement"
	"microrec/internal/tieredstore"
)

// parseTags is the build-tag list the annotation parser satisfies, mirroring
// the tags this test binary was built with. The default build satisfies
// none; zeroalloc_noasm_test.go switches it under -tags noasm.
var parseTags []string

// zeroallocArch holds the rows contributed by build-constrained sibling
// files (optimized kernels that only exist on some build shapes).
var zeroallocArch []allocCase

type allocCase struct {
	name string
	// covers lists the annotated functions this runner executes, keyed as
	// "<package dir>.<receiver.>name" (e.g. "internal/core.Engine.DenseFromPlane").
	covers []string
	run    func()
}

// allocQueries mirrors the per-package randomQueries test helpers: n valid
// queries for spec with deterministic indices.
func allocQueries(spec *model.Spec, n int, seed int64) []embedding.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]embedding.Query, n)
	for i := range qs {
		q := make(embedding.Query, len(spec.Tables))
		for ti, tab := range spec.Tables {
			idxs := make([]int64, tab.Lookups)
			for k := range idxs {
				idxs[k] = rng.Int63n(tab.Rows)
			}
			q[ti] = idxs
		}
		qs[i] = q
	}
	return qs
}

// zeroallocCases builds the portable rows. The batch of 8 stays below the
// sharded gather's parallel threshold so the gather runners take the
// strictly allocation-free inline path (the parallel path's amortised
// goroutine fan-out is pinned separately in internal/core's gather tests).
func zeroallocCases(t *testing.T) []allocCase {
	t.Helper()
	spec := model.SmallProduction()
	cfg := core.SmallFP16()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const b = 8
	qs := allocQueries(spec, b, 3)

	var gatherScratch core.BatchScratch
	eng.EnsurePlane(&gatherScratch, b)
	preds := make([]float32, b)

	tables := make([]int, eng.PhysicalTables())
	for i := range tables {
		tables[i] = i
	}
	var partialScratch core.BatchScratch
	eng.EnsurePlane(&partialScratch, b)

	rec := obs.NewRecorder(256, 1)
	span := obs.Span{Start: 1, EndToEndNS: 9, GatherNS: 3, DenseNS: 4, TailNS: 2, Batch: b}

	const (
		tsRows = 64
		tsDim  = 8
	)
	tsData := make([]float32, tsRows*tsDim)
	for i := range tsData {
		tsData[i] = float32(i)
	}
	ts, err := tieredstore.Open(
		tieredstore.Config{SweepEvery: -1, HotBytes: 1 << 30},
		[]tieredstore.StreamSpec{{ID: 0, Data: tsData, Dim: tsDim, Lookups: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	hotHalf := make([]int64, tsRows/2)
	for i := range hotHalf {
		hotHalf[i] = int64(i)
	}
	ts.SetPlacement(0, hotHalf) // rows 0..31 hot, 32..63 cold: exercise both tiers
	stream := ts.Stream(0)

	done := make(chan struct{}, 1)
	x, err := pipeline.New(eng, pipeline.Options{
		Depth:    3,
		MaxBatch: 16,
		Deliver:  func(payload interface{}, preds []float32) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { x.Close() })
	pipeQs := allocQueries(spec, 16, 5)
	payload := new(int)

	const (
		kb, kin, kout, kstride = 4, 16, 8, 32
	)
	gx := make([]int64, kb*kstride)
	gy := make([]int64, kb*kstride)
	wt := make([]int64, kout*kin)
	for i := range gx {
		gx[i] = int64(i%7 - 3)
	}
	for i := range wt {
		wt[i] = int64(i%5 - 2)
	}
	qsrc := make([]float32, 48)
	qdst := make([]int64, 48)
	for i := range qsrc {
		qsrc[i] = float32(i)/16 - 1
	}

	return []allocCase{
		{
			name: "core/gather-inline",
			covers: []string{
				"internal/core.Engine.GatherIntoPlane",
				"internal/core.Engine.gatherTables",
				"internal/core.gatherTable.matRow",
				"internal/core.gatherTable.prefetchMatRow",
				"internal/core.gatherSource.prefetchRow",
			},
			run: func() { eng.GatherIntoPlane(qs, &gatherScratch) },
		},
		{
			name: "core/dense-tail",
			covers: []string{
				"internal/core.Engine.DenseFromPlane",
				"internal/core.Engine.TailFromPlane",
			},
			run: func() {
				eng.DenseFromPlane(b, &gatherScratch)
				eng.TailFromPlane(b, &gatherScratch, preds)
			},
		},
		{
			name: "core/partial-gather",
			covers: []string{
				"internal/core.Engine.GatherPartialIntoPlane",
				"internal/core.Engine.ZeroDenseTail",
			},
			run: func() {
				eng.GatherPartialIntoPlane(tables, qs, &partialScratch, nil)
				eng.ZeroDenseTail(b, &partialScratch)
			},
		},
		{
			name: "pipeline/round-trip",
			covers: []string{
				"internal/pipeline.Executor.gatherLoop",
				"internal/pipeline.Executor.denseLoop",
				"internal/pipeline.Executor.tailLoop",
			},
			run: func() {
				if err := x.Submit(pipeQs, payload); err != nil {
					t.Fatal(err)
				}
				<-done
			},
		},
		{
			name: "obs/span-record",
			covers: []string{
				"internal/obs.Recorder.Sample",
				"internal/obs.Recorder.Record",
				"internal/obs.Span.encode",
			},
			run: func() {
				if rec.Sample() {
					spanSink = rec.Record(span)
				}
			},
		},
		{
			name: "tieredstore/row-access",
			covers: []string{
				"internal/tieredstore.Stream.Row",
				"internal/tieredstore.Stream.RowTagged",
				"internal/tieredstore.Stream.PrefetchRow",
			},
			run: func() {
				rowSink = stream.Row(2)           // hot tier
				rowSink, _ = stream.RowTagged(40) // cold tier
				stream.PrefetchRow(41)
			},
		},
		{
			name: "kernels/reference",
			covers: []string{
				"internal/kernels.GemmRef",
				"internal/kernels.QuantizeRowRef",
				"internal/kernels.PrefetchNT",
			},
			run: func() {
				kernels.GemmRef(gx, gy, kb, kin, kout, kstride, wt)
				kernels.QuantizeRowRef(fixedpoint.Fixed16, qsrc, qdst)
				kernels.PrefetchNT(qsrc)
			},
		},
	}
}

// Sinks keep results live so the runners cannot be dead-code-eliminated.
var (
	spanSink uint64
	rowSink  []float32
)

// TestNoallocFunctionsAllocationFree is the consolidated AllocsPerRun pin:
// every annotated hot-path function, exercised through its natural entry
// point, allocates nothing in steady state.
func TestNoallocFunctionsAllocationFree(t *testing.T) {
	for _, c := range append(zeroallocCases(t), zeroallocArch...) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			c.run() // warm: ring buffers, lazily-sized scratch, page faults
			if allocs := testing.AllocsPerRun(100, c.run); allocs != 0 {
				t.Errorf("%s: %v allocs per run, want 0 (covers %v)", c.name, allocs, c.covers)
			}
		})
	}
}

// TestNoallocAnnotationTableComplete diffs the //microrec:noalloc annotation
// set parsed from source against the covers lists above. The parse respects
// the build tags this test was compiled with, so the noasm leg expects
// exactly the portable set.
func TestNoallocAnnotationTableComplete(t *testing.T) {
	annotated := parseNoallocAnnotations(t)
	covered := make(map[string]string)
	for _, c := range append(zeroallocCases(t), zeroallocArch...) {
		if len(c.covers) == 0 {
			t.Errorf("case %s covers nothing; every row must pin at least one annotated function", c.name)
		}
		for _, key := range c.covers {
			covered[key] = c.name
		}
	}
	for key := range annotated {
		if _, ok := covered[key]; !ok {
			t.Errorf("%s is annotated //microrec:noalloc but no zeroalloc case covers it; add it to a covers list with a runner", key)
		}
	}
	keys := make([]string, 0, len(covered))
	for key := range covered {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !annotated[key] {
			t.Errorf("case %s claims to cover %s, which has no //microrec:noalloc annotation in source; the annotation was moved or stripped", covered[key], key)
		}
	}
	if len(annotated) == 0 {
		t.Fatal("parsed zero //microrec:noalloc annotations; the source scan is broken")
	}
}

// parseNoallocAnnotations walks internal/ and cmd/ (the test runs with the
// repo root as working directory), skipping analyzer fixture trees, and
// returns the set of functions whose doc comment carries the directive.
func parseNoallocAnnotations(t *testing.T) map[string]bool {
	t.Helper()
	ctx := build.Default
	ctx.BuildTags = append([]string{}, parseTags...)
	out := make(map[string]bool)
	fset := token.NewFileSet()
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return fs.SkipDir
			}
			pkg, err := ctx.ImportDir(path, 0)
			if err != nil {
				if _, ok := err.(*build.NoGoError); ok {
					return nil
				}
				return err
			}
			for _, name := range pkg.GoFiles {
				f, err := parser.ParseFile(fset, filepath.Join(path, name), nil, parser.ParseComments)
				if err != nil {
					return err
				}
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Doc == nil {
						continue
					}
					for _, c := range fd.Doc.List {
						if c.Text == "//microrec:noalloc" {
							out[funcKey(path, fd)] = true
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func funcKey(dir string, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if recv := recvTypeName(fd.Recv.List[0].Type); recv != "" {
			name = recv + "." + name
		}
	}
	return filepath.ToSlash(dir) + "." + name
}

func recvTypeName(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.IndexListExpr:
			e = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
